#include "data/traffic_state.h"

#include <algorithm>

#include "util/check.h"

namespace bigcity::data {

TrafficStateSeries::TrafficStateSeries(int num_slices, int num_segments,
                                       double slice_seconds)
    : num_slices_(num_slices), num_segments_(num_segments),
      slice_seconds_(slice_seconds),
      values_(static_cast<size_t>(num_slices) * num_segments *
                  kTrafficChannels,
              0.0f) {
  BIGCITY_CHECK_GT(num_slices, 0);
  BIGCITY_CHECK_GT(num_segments, 0);
  BIGCITY_CHECK_GT(slice_seconds, 0.0);
}

int TrafficStateSeries::SliceOf(double timestamp) const {
  int t = static_cast<int>(timestamp / slice_seconds_);
  return std::clamp(t, 0, num_slices_ - 1);
}

size_t TrafficStateSeries::Index(int slice, int segment, int channel) const {
  BIGCITY_CHECK(slice >= 0 && slice < num_slices_);
  BIGCITY_CHECK(segment >= 0 && segment < num_segments_);
  BIGCITY_CHECK(channel >= 0 && channel < kTrafficChannels);
  return (static_cast<size_t>(slice) * num_segments_ + segment) *
             kTrafficChannels +
         channel;
}

float TrafficStateSeries::Get(int slice, int segment, int channel) const {
  return values_[Index(slice, segment, channel)];
}

void TrafficStateSeries::Set(int slice, int segment, int channel,
                             float value) {
  values_[Index(slice, segment, channel)] = value;
}

std::vector<float> TrafficStateSeries::Features(int slice,
                                                int segment) const {
  std::vector<float> f(kTrafficChannels);
  for (int c = 0; c < kTrafficChannels; ++c) f[c] = Get(slice, segment, c);
  return f;
}

nn::Tensor TrafficStateSeries::SliceMatrix(int slice) const {
  std::vector<float> data(static_cast<size_t>(num_segments_) *
                          kTrafficChannels);
  for (int i = 0; i < num_segments_; ++i) {
    for (int c = 0; c < kTrafficChannels; ++c) {
      data[static_cast<size_t>(i) * kTrafficChannels + c] =
          Get(slice, i, c);
    }
  }
  return nn::Tensor::FromData({num_segments_, kTrafficChannels},
                              std::move(data));
}

nn::Tensor TrafficStateSeries::SegmentSeries(int segment) const {
  std::vector<float> data(static_cast<size_t>(num_slices_) *
                          kTrafficChannels);
  for (int t = 0; t < num_slices_; ++t) {
    for (int c = 0; c < kTrafficChannels; ++c) {
      data[static_cast<size_t>(t) * kTrafficChannels + c] = Get(t, segment, c);
    }
  }
  return nn::Tensor::FromData({num_slices_, kTrafficChannels},
                              std::move(data));
}

}  // namespace bigcity::data
