#ifndef BIGCITY_DATA_DATASET_H_
#define BIGCITY_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/traffic_state.h"
#include "data/trajectory.h"
#include "data/trajectory_generator.h"
#include "roadnet/road_network.h"
#include "roadnet/synthetic_city.h"

namespace bigcity::data {

/// Full configuration of one synthetic city dataset (the substitute for the
/// paper's BJ / XA / CD corpora).
struct CityDatasetConfig {
  std::string name = "XA";
  roadnet::SyntheticCityConfig city;
  TrajectoryGeneratorConfig generator;
  double slice_seconds = 1800.0;  // 30-minute slices, as in the paper.
  /// BJ in the paper lacks reliable traffic states; mirrored here.
  bool has_dynamic_features = true;
  double train_fraction = 0.6;
  double val_fraction = 0.2;  // Remainder is the test split.
};

/// A generated city: road network, trajectory splits, and the traffic-state
/// series aggregated from ALL trajectories (as the paper computes traffic
/// states from the full map-matched corpus).
class CityDataset {
 public:
  explicit CityDataset(const CityDatasetConfig& config);

  const CityDatasetConfig& config() const { return config_; }
  const roadnet::RoadNetwork& network() const { return network_; }
  const TrafficStateSeries& traffic() const { return traffic_; }
  const std::vector<double>& popularity() const { return popularity_; }

  const std::vector<Trajectory>& train() const { return train_; }
  const std::vector<Trajectory>& val() const { return val_; }
  const std::vector<Trajectory>& test() const { return test_; }

  int num_slices() const { return traffic_.num_slices(); }
  int num_users() const { return config_.generator.num_users; }

 private:
  CityDatasetConfig config_;
  roadnet::RoadNetwork network_;
  std::vector<double> popularity_;
  TrafficStateSeries traffic_;
  std::vector<Trajectory> train_, val_, test_;
};

/// Small presets sized for single-core experiments. BJ is the largest and
/// has no dynamic features; XA and CD differ in layout seed and density,
/// mirroring the relative character of the paper's three datasets.
CityDatasetConfig BeijingLikeConfig();
CityDatasetConfig XianLikeConfig();
CityDatasetConfig ChengduLikeConfig();

/// Scales a preset's trajectory count (for quick tests: factor < 1).
CityDatasetConfig ScaleConfig(CityDatasetConfig config, double factor);

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_DATASET_H_
