#ifndef BIGCITY_DATA_ST_UNIT_H_
#define BIGCITY_DATA_ST_UNIT_H_

#include <vector>

#include "data/traffic_state.h"
#include "data/trajectory.h"

namespace bigcity::data {

/// Dimension of the timestamp feature vector iota_tau (Def. 4): hour-of-day
/// (sin, cos), day-of-week (sin, cos), and slice-within-day position.
inline constexpr int kTimeFeatureDim = 5;

/// Timestamp features for an absolute time in seconds since the epoch.
std::vector<float> TimeFeatures(double timestamp);

/// Normalized inter-sample gap delta_tau used by the ST tokenizer (Eq. 8);
/// 30 minutes -> 1.0.
float DeltaFeature(double delta_seconds);

/// Time-regression target unit: minutes. Used by MLP_t targets (TTE,
/// timestamp reconstruction) so typical per-hop gaps land near 1.0, which
/// keeps the MSE gradients well-scaled.
float MinutesTarget(double delta_seconds);

/// A sequence of ST-units (Eq. 2 / Eq. 3): the unified representation of
/// both trajectories and traffic-state series. Each unit is the triple
/// (segment, traffic state, sampling time); the tokenizer materializes the
/// static/dynamic features from the road network and traffic series, so the
/// sequence itself stores only (segment id, timestamp) plus provenance.
struct StUnitSequence {
  std::vector<int> segments;
  std::vector<double> timestamps;
  bool is_trajectory = true;
  /// For traffic-state sequences: the single segment the series describes.
  int series_segment = -1;

  int length() const { return static_cast<int>(segments.size()); }

  /// Unified view of a trajectory (Def. 8).
  static StUnitSequence FromTrajectory(const Trajectory& trajectory);

  /// Unified view of one segment's traffic-state series over slices
  /// [first_slice, first_slice + count) (Def. 7).
  static StUnitSequence FromTrafficSeries(const TrafficStateSeries& series,
                                          int segment, int first_slice,
                                          int count);
};

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_ST_UNIT_H_
