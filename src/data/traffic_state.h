#ifndef BIGCITY_DATA_TRAFFIC_STATE_H_
#define BIGCITY_DATA_TRAFFIC_STATE_H_

#include <vector>

#include "nn/tensor.h"

namespace bigcity::data {

/// Number of dynamic traffic-state channels per (segment, slice): mean speed
/// (m/s, normalized) and flow (vehicle entries, normalized).
inline constexpr int kTrafficChannels = 2;

/// Population-level traffic state (Def. 6): a [T, I, C] series of dynamic
/// features per time slice and road segment, stored dense row-major.
class TrafficStateSeries {
 public:
  TrafficStateSeries() = default;
  TrafficStateSeries(int num_slices, int num_segments,
                     double slice_seconds);

  int num_slices() const { return num_slices_; }
  int num_segments() const { return num_segments_; }
  double slice_seconds() const { return slice_seconds_; }

  /// Slice index containing `timestamp` (clamped to the valid range).
  int SliceOf(double timestamp) const;
  /// Start timestamp of slice t.
  double SliceStart(int t) const { return t * slice_seconds_; }

  float Get(int slice, int segment, int channel) const;
  void Set(int slice, int segment, int channel, float value);

  /// Dynamic feature vector e^(d)_{i,t} of length kTrafficChannels.
  std::vector<float> Features(int slice, int segment) const;

  /// [I, C] tensor for one slice (input to the dynamic GAT encoder).
  nn::Tensor SliceMatrix(int slice) const;

  /// [T, C] tensor of one segment's full series (traffic-state tasks).
  nn::Tensor SegmentSeries(int segment) const;

 private:
  size_t Index(int slice, int segment, int channel) const;

  int num_slices_ = 0;
  int num_segments_ = 0;
  double slice_seconds_ = 1800.0;
  std::vector<float> values_;
};

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_TRAFFIC_STATE_H_
