#include "data/trajectory_generator.h"

#include <cmath>

#include "obs/obs.h"
#include "roadnet/shortest_path.h"
#include "util/check.h"

namespace bigcity::data {

namespace {
constexpr double kSecondsPerDay = 86400.0;

/// Gaussian bump helper for the rush-hour profile.
double Bump(double hour, double center, double width) {
  const double z = (hour - center) / width;
  return std::exp(-0.5 * z * z);
}
}  // namespace

double CongestionMultiplier(double timestamp, double popularity,
                            double rush_strength) {
  const double hour = std::fmod(timestamp, kSecondsPerDay) / 3600.0;
  // Morning and evening peaks; night traffic is free-flowing.
  const double rush = Bump(hour, 8.0, 1.5) + Bump(hour, 18.0, 1.8);
  const double slowdown = 1.0 + rush_strength * rush * (0.3 + popularity);
  return 1.0 / slowdown;
}

std::vector<double> SegmentPopularity(const roadnet::RoadNetwork& network,
                                      util::Rng* rng) {
  std::vector<double> popularity(
      static_cast<size_t>(network.num_segments()));
  for (int i = 0; i < network.num_segments(); ++i) {
    double base = 0.2;
    switch (network.segment(i).type) {
      case roadnet::RoadType::kLocal: base = 0.2; break;
      case roadnet::RoadType::kArterial: base = 0.5; break;
      case roadnet::RoadType::kHighway: base = 0.7; break;
    }
    popularity[static_cast<size_t>(i)] =
        std::clamp(base + rng->Uniform(-0.15, 0.15), 0.0, 1.0);
  }
  return popularity;
}

TrajectoryGenerator::TrajectoryGenerator(const roadnet::RoadNetwork* network,
                                         TrajectoryGeneratorConfig config)
    : network_(network), config_(config), rng_(config.seed) {
  BIGCITY_CHECK(network != nullptr);
  BIGCITY_CHECK_GT(config_.num_users, 0);
  popularity_ = SegmentPopularity(*network_, &rng_);
  users_.reserve(static_cast<size_t>(config_.num_users));
  const int n = network_->num_segments();
  for (int u = 0; u < config_.num_users; ++u) {
    UserProfile profile;
    profile.home_segment = rng_.UniformInt(0, n - 1);
    do {
      profile.work_segment = rng_.UniformInt(0, n - 1);
    } while (profile.work_segment == profile.home_segment);
    profile.speed_factor = rng_.Uniform(0.85, 1.15);
    profile.route_seed = config_.seed * 7919 + static_cast<uint64_t>(u);
    users_.push_back(profile);
  }
}

std::vector<Trajectory> TrajectoryGenerator::Generate() {
  BIGCITY_TIMED_SCOPE_NAMED("data.generate_us", "generate_trajectories",
                            "data");
  std::vector<Trajectory> result;
  result.reserve(static_cast<size_t>(config_.num_trajectories));
  int attempts = 0;
  const int max_attempts = config_.num_trajectories * 20;
  while (static_cast<int>(result.size()) < config_.num_trajectories &&
         attempts < max_attempts) {
    ++attempts;
    const int user_id = rng_.UniformInt(0, config_.num_users - 1);
    Trajectory trip = GenerateTrip(user_id, users_[static_cast<size_t>(user_id)]);
    if (trip.length() >= config_.min_hops) result.push_back(std::move(trip));
  }
  BIGCITY_CHECK_GE(static_cast<int>(result.size()),
                   config_.num_trajectories / 2)
      << "generator failed to produce enough valid trips";
  BIGCITY_COUNTER_ADD("data.trajectories.generated", result.size());
  BIGCITY_COUNTER_ADD("data.trajectories.attempts", attempts);
  return result;
}

Trajectory TrajectoryGenerator::GenerateTrip(int user_id,
                                             const UserProfile& user) {
  Trajectory trip;
  trip.user_id = user_id;

  // Departure time: commute peaks plus uniform background trips.
  const int day = rng_.UniformInt(
      0, std::max(0, static_cast<int>(config_.horizon_days) - 1));
  double hour;
  int origin, destination;
  const double r = rng_.Uniform();
  const int n = network_->num_segments();
  if (r < 0.35) {  // Morning commute.
    hour = 8.0 + rng_.Normal(0.0, 1.0);
    origin = user.home_segment;
    destination = user.work_segment;
  } else if (r < 0.70) {  // Evening commute.
    hour = 18.0 + rng_.Normal(0.0, 1.2);
    origin = user.work_segment;
    destination = user.home_segment;
  } else {  // Background trip anchored at home or work.
    hour = rng_.Uniform(6.0, 23.0);
    origin = rng_.Bernoulli(0.5) ? user.home_segment : user.work_segment;
    destination = rng_.UniformInt(0, n - 1);
  }
  hour = std::clamp(hour, 0.0, 23.75);
  double timestamp = day * kSecondsPerDay + hour * 3600.0 +
                     rng_.Uniform(0.0, 600.0);

  // Habitual route: per-user deterministic weight noise + small per-trip
  // variation so a user's trips share route structure without being
  // identical.
  util::Rng route_rng(user.route_seed + static_cast<uint64_t>(
                          rng_.UniformInt(0, 3)));
  std::vector<int> path = roadnet::NoisyShortestPath(
      *network_, origin, destination, config_.route_noise, &route_rng);
  if (path.empty()) return trip;

  const double dep_hour = std::fmod(timestamp, kSecondsPerDay) / 3600.0;
  trip.pattern_label =
      (Bump(dep_hour, 8.0, 1.5) + Bump(dep_hour, 18.0, 1.8)) > 0.4 ? 1 : 0;

  trip.points.reserve(path.size());
  for (int segment : path) {
    trip.points.push_back({segment, timestamp});
    const auto& s = network_->segment(segment);
    const double congestion = CongestionMultiplier(
        timestamp, popularity_[static_cast<size_t>(segment)],
        config_.rush_strength);
    const double speed =
        s.speed_limit_mps * congestion * user.speed_factor *
        std::exp(rng_.Normal(0.0, config_.speed_noise));
    timestamp += s.length_m / std::max(speed, 0.5);
  }
  return trip;
}

}  // namespace bigcity::data
