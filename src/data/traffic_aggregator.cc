#include "data/traffic_aggregator.h"

#include <algorithm>

#include "data/trajectory_generator.h"
#include "util/check.h"

namespace bigcity::data {

TrafficAggregator::TrafficAggregator(const roadnet::RoadNetwork* network,
                                     int num_slices, double slice_seconds,
                                     double rush_strength)
    : network_(network), num_slices_(num_slices),
      slice_seconds_(slice_seconds), rush_strength_(rush_strength) {
  BIGCITY_CHECK(network != nullptr);
}

TrafficStateSeries TrafficAggregator::Aggregate(
    const std::vector<Trajectory>& trajectories,
    const std::vector<double>& popularity) const {
  const int num_segments = network_->num_segments();
  BIGCITY_CHECK_EQ(static_cast<int>(popularity.size()), num_segments);
  TrafficStateSeries series(num_slices_, num_segments, slice_seconds_);

  std::vector<double> speed_sum(
      static_cast<size_t>(num_slices_) * num_segments, 0.0);
  std::vector<int> count(static_cast<size_t>(num_slices_) * num_segments, 0);

  for (const auto& trip : trajectories) {
    // Observed speed on point l = length / (t_{l+1} - t_l); the last point
    // has no exit time and contributes only to flow.
    for (int l = 0; l < trip.length(); ++l) {
      const auto& point = trip.points[static_cast<size_t>(l)];
      const int slice = series.SliceOf(point.timestamp);
      const size_t idx =
          static_cast<size_t>(slice) * num_segments + point.segment;
      if (l + 1 < trip.length()) {
        const double dt =
            trip.points[static_cast<size_t>(l + 1)].timestamp -
            point.timestamp;
        if (dt > 1e-6) {
          const double speed =
              network_->segment(point.segment).length_m / dt;
          speed_sum[idx] += speed;
          count[idx] += 1;
          continue;
        }
      }
      // Flow-only contribution.
      count[idx] += 0;  // Entries without speed still count as flow below.
    }
  }

  // Flow: entries per slice (including trailing points).
  std::vector<int> flow(static_cast<size_t>(num_slices_) * num_segments, 0);
  for (const auto& trip : trajectories) {
    for (const auto& point : trip.points) {
      const int slice = series.SliceOf(point.timestamp);
      ++flow[static_cast<size_t>(slice) * num_segments + point.segment];
    }
  }

  for (int t = 0; t < num_slices_; ++t) {
    const double slice_mid = (t + 0.5) * slice_seconds_;
    for (int i = 0; i < num_segments; ++i) {
      const size_t idx = static_cast<size_t>(t) * num_segments + i;
      float speed;
      if (count[idx] > 0) {
        speed = static_cast<float>(speed_sum[idx] / count[idx]);
      } else {
        // Fallback: expected speed under the congestion profile.
        const double mult = CongestionMultiplier(
            slice_mid, popularity[static_cast<size_t>(i)], rush_strength_);
        speed = static_cast<float>(network_->segment(i).speed_limit_mps *
                                   mult);
      }
      series.Set(t, i, 0, speed / kSpeedScale);
      series.Set(t, i, 1,
                 std::min(static_cast<float>(flow[idx]) / kFlowScale, 2.0f));
    }
  }
  return series;
}

}  // namespace bigcity::data
