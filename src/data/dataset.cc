#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "data/traffic_aggregator.h"
#include "util/check.h"
#include "util/logging.h"

namespace bigcity::data {

CityDataset::CityDataset(const CityDatasetConfig& config)
    : config_(config),
      network_(roadnet::GenerateSyntheticCity(config.city)) {
  TrajectoryGenerator generator(&network_, config.generator);
  std::vector<Trajectory> all = generator.Generate();
  popularity_ = generator.popularity();

  const int num_slices = static_cast<int>(
      std::ceil(config.generator.horizon_days * 86400.0 /
                config.slice_seconds));
  TrafficAggregator aggregator(&network_, num_slices, config.slice_seconds,
                               config.generator.rush_strength);
  traffic_ = aggregator.Aggregate(all, popularity_);

  // Chronological-free random split with a deterministic shuffle, matching
  // the paper's 6:2:2 (XA/CD) and 8:1:1 (BJ) protocol.
  util::Rng split_rng(config.generator.seed ^ 0x5f5f5f5f);
  split_rng.Shuffle(&all);
  const int n = static_cast<int>(all.size());
  const int n_train = static_cast<int>(n * config.train_fraction);
  const int n_val = static_cast<int>(n * config.val_fraction);
  train_.assign(all.begin(), all.begin() + n_train);
  val_.assign(all.begin() + n_train, all.begin() + n_train + n_val);
  test_.assign(all.begin() + n_train + n_val, all.end());
  BIGCITY_LOG(Info) << "CityDataset " << config.name << ": "
                    << network_.num_segments() << " segments, " << n
                    << " trajectories (" << train_.size() << "/"
                    << val_.size() << "/" << test_.size() << " split), "
                    << num_slices << " slices";
}

CityDatasetConfig BeijingLikeConfig() {
  CityDatasetConfig config;
  config.name = "BJ";
  config.city.grid_width = 11;
  config.city.grid_height = 11;
  config.city.seed = 1001;
  config.generator.num_users = 40;
  config.generator.num_trajectories = 1400;
  config.generator.horizon_days = 2.0;
  config.generator.seed = 2001;
  config.has_dynamic_features = false;  // Sparse BJ traffic, as in paper.
  config.train_fraction = 0.8;
  config.val_fraction = 0.1;
  return config;
}

CityDatasetConfig XianLikeConfig() {
  CityDatasetConfig config;
  config.name = "XA";
  config.city.grid_width = 8;
  config.city.grid_height = 8;
  config.city.seed = 1002;
  config.generator.num_users = 24;
  config.generator.num_trajectories = 900;
  config.generator.horizon_days = 2.0;
  config.generator.seed = 2002;
  config.has_dynamic_features = true;
  config.train_fraction = 0.6;
  config.val_fraction = 0.2;
  return config;
}

CityDatasetConfig ChengduLikeConfig() {
  CityDatasetConfig config;
  config.name = "CD";
  config.city.grid_width = 9;
  config.city.grid_height = 8;
  config.city.seed = 1003;
  config.city.drop_street_prob = 0.18;
  config.generator.num_users = 30;
  config.generator.num_trajectories = 1000;
  config.generator.horizon_days = 2.0;
  config.generator.seed = 2003;
  config.has_dynamic_features = true;
  config.train_fraction = 0.6;
  config.val_fraction = 0.2;
  return config;
}

CityDatasetConfig ScaleConfig(CityDatasetConfig config, double factor) {
  config.generator.num_trajectories = std::max(
      20, static_cast<int>(config.generator.num_trajectories * factor));
  return config;
}

}  // namespace bigcity::data
