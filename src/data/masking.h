#ifndef BIGCITY_DATA_MASKING_H_
#define BIGCITY_DATA_MASKING_H_

#include <vector>

#include "util/rng.h"

namespace bigcity::data {

/// Selects the positions KEPT when downsampling a length-`length` sequence
/// at the given mask ratio (e.g. 0.9 keeps ~10%). The first and last
/// positions are always kept (trajectory recovery needs anchored endpoints).
/// Returned indices are sorted and distinct.
std::vector<int> DownsampleKeepIndices(int length, double mask_ratio,
                                       util::Rng* rng);

/// Selects `k` random positions to mask for masked-reconstruction training.
/// Indices are sorted and distinct; k is clamped to [1, length].
std::vector<int> RandomMaskIndices(int length, int k, util::Rng* rng);

/// Complement of `kept` within [0, length).
std::vector<int> ComplementIndices(int length, const std::vector<int>& kept);

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_MASKING_H_
