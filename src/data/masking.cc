#include "data/masking.h"

#include <algorithm>

#include "util/check.h"

namespace bigcity::data {

std::vector<int> DownsampleKeepIndices(int length, double mask_ratio,
                                       util::Rng* rng) {
  BIGCITY_CHECK_GE(length, 2);
  BIGCITY_CHECK(mask_ratio >= 0.0 && mask_ratio < 1.0);
  std::vector<int> kept = {0, length - 1};
  for (int i = 1; i + 1 < length; ++i) {
    if (!rng->Bernoulli(mask_ratio)) kept.push_back(i);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

std::vector<int> RandomMaskIndices(int length, int k, util::Rng* rng) {
  BIGCITY_CHECK_GE(length, 1);
  k = std::clamp(k, 1, length);
  return rng->SampleWithoutReplacement(length, k);
}

std::vector<int> ComplementIndices(int length,
                                   const std::vector<int>& kept) {
  std::vector<bool> is_kept(static_cast<size_t>(length), false);
  for (int i : kept) {
    BIGCITY_CHECK(i >= 0 && i < length);
    is_kept[static_cast<size_t>(i)] = true;
  }
  std::vector<int> result;
  for (int i = 0; i < length; ++i) {
    if (!is_kept[static_cast<size_t>(i)]) result.push_back(i);
  }
  return result;
}

}  // namespace bigcity::data
