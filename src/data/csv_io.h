#ifndef BIGCITY_DATA_CSV_IO_H_
#define BIGCITY_DATA_CSV_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "data/traffic_state.h"
#include "data/trajectory.h"
#include "util/status.h"

namespace bigcity::data {

// CSV import/export so generated datasets can be inspected with standard
// tools and real (map-matched) corpora can be fed into the library.
//
// Trajectory CSV schema (one row per sample, header required):
//   trip_id,user_id,pattern_label,segment,timestamp
// Rows of one trip must be contiguous and time-ordered.
//
// Traffic CSV schema (one row per (slice, segment), header required):
//   slice,segment,speed,flow

void WriteTrajectoriesCsv(std::ostream& out,
                          const std::vector<Trajectory>& trajectories);
util::Result<std::vector<Trajectory>> ReadTrajectoriesCsv(std::istream& in);

void WriteTrafficCsv(std::ostream& out, const TrafficStateSeries& series);
/// `slice_seconds` is not stored in the CSV and must be supplied.
util::Result<TrafficStateSeries> ReadTrafficCsv(std::istream& in,
                                                double slice_seconds);

// File-path conveniences.
util::Status SaveTrajectoriesCsv(const std::string& path,
                                 const std::vector<Trajectory>& trajectories);
util::Result<std::vector<Trajectory>> LoadTrajectoriesCsv(
    const std::string& path);

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_CSV_IO_H_
