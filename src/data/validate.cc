#include "data/validate.h"

#include <cmath>
#include <limits>
#include <string>

namespace bigcity::data {

util::Status ValidateTrajectory(const Trajectory& trajectory,
                                int num_segments) {
  if (trajectory.points.empty()) {
    return util::Status::InvalidArgument("trajectory has no points");
  }
  double previous = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < trajectory.points.size(); ++i) {
    const TrajPoint& point = trajectory.points[i];
    if (point.segment < 0 || point.segment >= num_segments) {
      return util::Status::InvalidArgument(
          "point " + std::to_string(i) + ": segment id " +
          std::to_string(point.segment) + " outside [0, " +
          std::to_string(num_segments) + ")");
    }
    if (!std::isfinite(point.timestamp)) {
      return util::Status::InvalidArgument(
          "point " + std::to_string(i) + ": non-finite timestamp");
    }
    if (point.timestamp < previous) {
      return util::Status::InvalidArgument(
          "point " + std::to_string(i) + ": timestamp " +
          std::to_string(point.timestamp) + " precedes previous " +
          std::to_string(previous) + " (non-monotone)");
    }
    previous = point.timestamp;
  }
  return util::Status::Ok();
}

util::Status ValidateTrajectories(const std::vector<Trajectory>& trajectories,
                                  int num_segments) {
  for (size_t i = 0; i < trajectories.size(); ++i) {
    if (auto s = ValidateTrajectory(trajectories[i], num_segments); !s.ok()) {
      return util::Status::InvalidArgument("trip " + std::to_string(i) +
                                           ": " + s.message());
    }
  }
  return util::Status::Ok();
}

util::Status ValidateTrafficWindow(const TrafficStateSeries& series,
                                   int segment, int first_slice, int count) {
  if (segment < 0 || segment >= series.num_segments()) {
    return util::Status::InvalidArgument(
        "traffic segment " + std::to_string(segment) + " outside [0, " +
        std::to_string(series.num_segments()) + ")");
  }
  if (count <= 0) {
    return util::Status::InvalidArgument("traffic window count " +
                                         std::to_string(count) +
                                         " must be positive");
  }
  if (first_slice < 0 || first_slice + count > series.num_slices()) {
    return util::Status::InvalidArgument(
        "traffic window [" + std::to_string(first_slice) + ", " +
        std::to_string(first_slice + count) + ") outside [0, " +
        std::to_string(series.num_slices()) + ")");
  }
  // NaN/Inf dynamic features in the requested window would propagate
  // through the GAT encoder into every downstream activation; reject them
  // at the boundary like any other malformed input.
  for (int slice = first_slice; slice < first_slice + count; ++slice) {
    for (int channel = 0; channel < kTrafficChannels; ++channel) {
      if (!std::isfinite(series.Get(slice, segment, channel))) {
        return util::Status::InvalidArgument(
            "traffic feature (slice " + std::to_string(slice) +
            ", segment " + std::to_string(segment) + ", channel " +
            std::to_string(channel) + ") is non-finite");
      }
    }
  }
  return util::Status::Ok();
}

}  // namespace bigcity::data
