#ifndef BIGCITY_DATA_TRAJECTORY_GENERATOR_H_
#define BIGCITY_DATA_TRAJECTORY_GENERATOR_H_

#include <vector>

#include "data/trajectory.h"
#include "roadnet/road_network.h"
#include "util/rng.h"

namespace bigcity::data {

/// Configuration of the synthetic trip generator — the substitute for the
/// paper's taxi / ride-hailing GPS corpora. Users are persistent agents with
/// home/work anchors, habitual (noisy-shortest) routes, personal speed
/// factors, and rush-hour-driven departure times, so the generated corpus
/// carries the signals the paper's tasks rely on: user-distinctive routing
/// (trajectory-user linkage), time-of-day congestion (TTE, traffic states),
/// and network-constrained transitions (next-hop prediction).
struct TrajectoryGeneratorConfig {
  int num_users = 50;
  int num_trajectories = 1000;
  double horizon_days = 2.0;
  double route_noise = 0.8;     // Per-user weight perturbation strength.
  double speed_noise = 0.10;    // Log-normal per-segment speed jitter.
  int min_hops = 6;             // Minimum path length in segments.
  double rush_strength = 1.1;   // Peak congestion slowdown factor.
  uint64_t seed = 99;
};

/// Time-of-day congestion multiplier in (0, 1]: effective speed =
/// speed_limit * multiplier. Shared with the traffic aggregation so the
/// population-level states are consistent with individual trips.
double CongestionMultiplier(double timestamp, double popularity,
                            double rush_strength);

/// Per-segment popularity in [0,1]; arterials/highways attract more flow.
std::vector<double> SegmentPopularity(const roadnet::RoadNetwork& network,
                                      util::Rng* rng);

class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const roadnet::RoadNetwork* network,
                      TrajectoryGeneratorConfig config);

  /// Generates the full corpus (deterministic for a given config).
  std::vector<Trajectory> Generate();

  const std::vector<double>& popularity() const { return popularity_; }

 private:
  struct UserProfile {
    int home_segment;
    int work_segment;
    double speed_factor;
    uint64_t route_seed;
  };

  Trajectory GenerateTrip(int user_id, const UserProfile& user);

  const roadnet::RoadNetwork* network_;
  TrajectoryGeneratorConfig config_;
  util::Rng rng_;
  std::vector<UserProfile> users_;
  std::vector<double> popularity_;
};

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_TRAJECTORY_GENERATOR_H_
