#ifndef BIGCITY_DATA_TRAFFIC_AGGREGATOR_H_
#define BIGCITY_DATA_TRAFFIC_AGGREGATOR_H_

#include <vector>

#include "data/traffic_state.h"
#include "data/trajectory.h"
#include "roadnet/road_network.h"

namespace bigcity::data {

/// Builds population-level traffic states from individual trajectories —
/// the same pipeline the paper uses (map-matched trips aggregated into
/// 30-minute slices). Channel 0 is mean observed speed normalized by
/// kSpeedScale; channel 1 is normalized flow (entries per slice). Slices a
/// segment was never observed in fall back to the free-flow estimate under
/// the synthetic congestion profile (the closest analogue of the paper's
/// historical-mean imputation for sparse slices).
class TrafficAggregator {
 public:
  static constexpr float kSpeedScale = 20.0f;  // m/s -> ~[0,1.2].
  static constexpr float kFlowScale = 10.0f;

  TrafficAggregator(const roadnet::RoadNetwork* network, int num_slices,
                    double slice_seconds, double rush_strength);

  /// Aggregates all trajectories into a dense traffic-state series.
  /// `popularity` must match the generator's per-segment popularity so the
  /// free-flow fallback is consistent with observed samples.
  TrafficStateSeries Aggregate(const std::vector<Trajectory>& trajectories,
                               const std::vector<double>& popularity) const;

 private:
  const roadnet::RoadNetwork* network_;
  int num_slices_;
  double slice_seconds_;
  double rush_strength_;
};

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_TRAFFIC_AGGREGATOR_H_
