#ifndef BIGCITY_DATA_VALIDATE_H_
#define BIGCITY_DATA_VALIDATE_H_

#include <vector>

#include "data/traffic_state.h"
#include "data/trajectory.h"
#include "util/status.h"

namespace bigcity::data {

/// Trajectory ingestion validation (DESIGN.md §4.11). Historically a
/// poisoned trajectory (out-of-range segment id, non-monotone or NaN
/// timestamps) sailed through ingestion and CHECK-aborted deep in the
/// road-network / tensor layer — acceptable for a batch harness, fatal for
/// a server where one bad request must not kill the process. These return
/// kInvalidArgument instead so callers can quarantine the input.
///
/// Checks: non-empty, every segment id in [0, num_segments), every
/// timestamp finite, and timestamps non-decreasing.
util::Status ValidateTrajectory(const Trajectory& trajectory,
                                int num_segments);

/// Validates a whole corpus (e.g. a CSV import) against the segment count;
/// the message of the first failure identifies the offending trip index.
util::Status ValidateTrajectories(const std::vector<Trajectory>& trajectories,
                                  int num_segments);

/// Bounds-checks a traffic-series window request: segment in range and
/// [first_slice, first_slice + count) within the series.
util::Status ValidateTrafficWindow(const TrafficStateSeries& series,
                                   int segment, int first_slice, int count);

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_VALIDATE_H_
