#ifndef BIGCITY_DATA_TRAJECTORY_H_
#define BIGCITY_DATA_TRAJECTORY_H_

#include <vector>

namespace bigcity::data {

/// One sample of a trajectory (Def. 5): a road segment entered at a
/// timestamp (seconds since the dataset epoch).
struct TrajPoint {
  int segment = 0;
  double timestamp = 0.0;
};

/// A map-matched trip by one user. `pattern_label` is the trip's traffic
/// pattern class (0 = off-peak, 1 = peak) used for binary trajectory
/// classification on the BJ-style dataset; user_id drives trajectory-user
/// linkage on XA/CD-style datasets.
struct Trajectory {
  int user_id = 0;
  int pattern_label = 0;
  std::vector<TrajPoint> points;

  int length() const { return static_cast<int>(points.size()); }
  double duration_seconds() const {
    return points.empty() ? 0.0
                          : points.back().timestamp - points.front().timestamp;
  }
};

}  // namespace bigcity::data

#endif  // BIGCITY_DATA_TRAJECTORY_H_
