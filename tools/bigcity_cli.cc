// Command-line interface for the BIGCity library.
//
// Subcommands:
//   generate --city XA --scale 0.5 --out trips.csv
//       Generate a synthetic city's trajectory corpus and export it as CSV.
//   train    --city XA --scale 0.5 --save model.bin [--epochs1 N --epochs2 N]
//       Run the full two-stage training pipeline and checkpoint the model.
//   eval     --city XA --scale 0.5 --load model.bin
//       Evaluate a checkpoint on all eight tasks and print a report.
//   serve    --city XA --scale 0.5 --requests trips.csv [--task next]
//       Drive the resilient inference server with a trajectory request
//       file and print an outcome/latency summary. With --model-dir the
//       server watches the versioned model directory and hot-swaps
//       published versions through the canary gate while serving; add
//       --watch-seconds to keep replaying the request mix for that long.
//   publish  --city XA --scale 0.5 --model-dir models/ [--load model.bin]
//       Publish a checkpoint into a versioned model directory (weights +
//       CRC manifest, atomic CURRENT flip) for a watching server to pick
//       up. Without --load the freshly initialized weights are published.
//   metrics  --in snapshot.json
//       Render the serving sections of a metrics snapshot (--metrics-out
//       of a previous run): per-task SLO gauges and every serve.*
//       histogram's count/mean/p50/p95/p99 in one table.
//   top      --in telemetry.jsonl [--follow]
//       Per-task serving dashboard (QPS, p50/p99, success/burn rate,
//       outcome mix, batch occupancy, cache hit rates) aggregated from a
//       telemetry JSONL stream (serve --telemetry-out). --follow
//       re-renders every --telemetry-interval-ms until interrupted.
//
// The --city/--scale pair must match between train and eval/serve/publish
// (the model's label space is city-specific). A checkpoint produced by
// `train` carries LoRA adapters: pass --load on both the publish and the
// serve side (or neither) so the replicas' parameter sets line up.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include <algorithm>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "core/bigcity_model.h"
#include "data/csv_io.h"
#include "data/dataset.h"
#include "obs/obs.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/model_dir.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

struct CliOptions {
  std::string command;
  std::string city = "XA";
  double scale = 0.5;
  std::string out;
  std::string save;
  std::string load;
  std::string checkpoint_dir;
  int epochs1 = 2;
  int epochs2 = 6;
  int threads = 0;  // 0 = keep the default (single-threaded kernels).
  bool plans = true;  // Execution plans + tensor arenas (DESIGN.md §4.13).
  // Observability sinks (DESIGN.md §4.9); empty = off.
  std::string trace_out;    // chrome://tracing JSON of the whole run.
  std::string run_report;   // train: per-epoch JSONL run report.
  std::string metrics_out;  // metrics-registry snapshot JSON.
  std::string profile_out;  // autograd op profile: table on stdout + JSON.
  int health_every = 0;     // train: health record every N applied steps.
  // Serving (DESIGN.md §4.11).
  std::string requests;       // serve: trajectory CSV driving the request mix.
  std::string serve_task = "next";  // next | tte | class | embed.
  int workers = 2;
  int queue_capacity = 16;
  double deadline_ms = 0;     // <= 0: no per-request deadline.
  // Continuous batching (DESIGN.md §4.14).
  bool batching = true;       // --no-batching: per-request forwards.
  int batch_max = 8;          // Coalesce at most this many requests.
  double batch_window_us = 200.0;  // Max wait for batch-mates.
  // Model lifecycle (DESIGN.md §4.12).
  std::string model_dir;      // serve: watch; publish: destination.
  double watch_seconds = 0;   // serve: keep replaying this long (0 = once).
  double hang_threshold_ms = 5000.0;  // serve: watchdog reap threshold.
  double mem_budget_mb = 0;   // serve: memory budget; 0 = no overload control.
  // Live telemetry + dashboards (DESIGN.md §4.15).
  std::string telemetry_out;  // serve: periodic JSONL metric deltas.
  double telemetry_interval_ms = 1000.0;
  std::string in_path;        // metrics/top: input snapshot / JSONL path.
  bool follow = false;        // top: keep re-rendering until interrupted.
};

void PrintUsage() {
  std::printf(
      "usage: bigcity_cli "
      "<generate|train|eval|serve|publish|metrics|top> [options]\n"
      "  --city BJ|XA|CD   city preset (default XA)\n"
      "  --scale F         trajectory-count scale factor (default 0.5)\n"
      "  --out PATH        generate: CSV output path\n"
      "  --save PATH       train: checkpoint output path\n"
      "  --load PATH       eval: checkpoint input path\n"
      "  --epochs1 N       train: stage-1 epochs (default 2)\n"
      "  --epochs2 N       train: stage-2 epochs (default 6)\n"
      "  --checkpoint-dir D train: per-epoch crash-safe snapshots; an\n"
      "                    interrupted run resumes from D automatically\n"
      "  --threads N       kernel worker threads (default 1); results are\n"
      "                    bit-identical for any N\n"
      "  --plans on|off    train/serve: execution plans + tensor arenas\n"
      "                    (default on); off falls back to eager heap\n"
      "                    allocation — results are bit-identical either way\n"
      "  --trace-out PATH  write a chrome://tracing JSON of the run\n"
      "  --run-report PATH train: write a per-epoch JSONL run report\n"
      "                    (tokens/sec, GEMM FLOPs, guard/checkpoint counts)\n"
      "  --metrics-out PATH write the final metrics snapshot as JSON\n"
      "  --profile PATH    profile autograd ops (forward + backward): print\n"
      "                    a per-op/per-module table and write it as JSON\n"
      "  --health-every N  train: per-layer gradient/update telemetry every\n"
      "                    N applied steps, written to the run report\n"
      "  --requests PATH   serve: trajectory CSV (see generate) to replay\n"
      "  --task NAME       serve: next|tte|class|embed (default next)\n"
      "  --workers N       serve: worker threads / model replicas (default 2)\n"
      "  --queue N         serve: admission queue capacity (default 16)\n"
      "  --deadline-ms F   serve: per-request deadline; 0 = none\n"
      "  --batch-max N     serve: coalesce up to N same-task requests per\n"
      "                    forward (default 8); outputs are bit-identical\n"
      "                    to per-request forwards for any N\n"
      "  --batch-window-us F serve: max wait for batch-mates (default 200)\n"
      "  --no-batching     serve: disable the batcher stage (per-request\n"
      "                    forwards, no shared tokenizer/KV caches)\n"
      "  --model-dir D     serve: watch D for published versions and\n"
      "                    hot-swap them through the canary gate;\n"
      "                    publish: versioned destination directory\n"
      "  --watch-seconds F serve: keep replaying the request mix for F\n"
      "                    seconds (0 = one replay pass)\n"
      "  --hang-threshold-ms F serve: watchdog reaps a worker wedged\n"
      "                    mid-request past F ms and replaces it from the\n"
      "                    stable weights (default 5000; 0 = off)\n"
      "  --mem-budget-mb F serve: memory budget for overload control —\n"
      "                    above 75%% capacity halves, above 90%% new\n"
      "                    admissions shed until usage falls back under\n"
      "                    75%% (default 0 = off)\n"
      "  --telemetry-out PATH serve: append periodic JSONL deltas of the\n"
      "                    serve.*/slo.* metrics (consumed by `top`)\n"
      "  --telemetry-interval-ms F serve: telemetry tick period; top:\n"
      "                    --follow refresh period (default 1000)\n"
      "  --in PATH         metrics: snapshot JSON (--metrics-out of a\n"
      "                    previous run); top: telemetry JSONL stream\n"
      "  --follow          top: clear and re-render every interval\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 2) return false;
  options->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--no-batching") {  // Valueless flags first.
      options->batching = false;
      continue;
    }
    if (flag == "--follow") {
      options->follow = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (flag == "--city") {
      options->city = value;
    } else if (flag == "--scale") {
      options->scale = std::atof(value.c_str());
    } else if (flag == "--out") {
      options->out = value;
    } else if (flag == "--save") {
      options->save = value;
    } else if (flag == "--load") {
      options->load = value;
    } else if (flag == "--epochs1") {
      options->epochs1 = std::atoi(value.c_str());
    } else if (flag == "--epochs2") {
      options->epochs2 = std::atoi(value.c_str());
    } else if (flag == "--checkpoint-dir") {
      options->checkpoint_dir = value;
    } else if (flag == "--threads") {
      options->threads = std::atoi(value.c_str());
    } else if (flag == "--plans") {
      options->plans = value != "off";
    } else if (flag == "--trace-out") {
      options->trace_out = value;
    } else if (flag == "--run-report") {
      options->run_report = value;
    } else if (flag == "--metrics-out") {
      options->metrics_out = value;
    } else if (flag == "--profile") {
      options->profile_out = value;
    } else if (flag == "--health-every") {
      options->health_every = std::atoi(value.c_str());
    } else if (flag == "--requests") {
      options->requests = value;
    } else if (flag == "--task") {
      options->serve_task = value;
    } else if (flag == "--workers") {
      options->workers = std::atoi(value.c_str());
    } else if (flag == "--queue") {
      options->queue_capacity = std::atoi(value.c_str());
    } else if (flag == "--deadline-ms") {
      options->deadline_ms = std::atof(value.c_str());
    } else if (flag == "--batch-max") {
      options->batch_max = std::atoi(value.c_str());
    } else if (flag == "--batch-window-us") {
      options->batch_window_us = std::atof(value.c_str());
    } else if (flag == "--model-dir") {
      options->model_dir = value;
    } else if (flag == "--watch-seconds") {
      options->watch_seconds = std::atof(value.c_str());
    } else if (flag == "--hang-threshold-ms") {
      options->hang_threshold_ms = std::atof(value.c_str());
    } else if (flag == "--mem-budget-mb") {
      options->mem_budget_mb = std::atof(value.c_str());
    } else if (flag == "--telemetry-out") {
      options->telemetry_out = value;
    } else if (flag == "--telemetry-interval-ms") {
      options->telemetry_interval_ms = std::atof(value.c_str());
    } else if (flag == "--in") {
      options->in_path = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

data::CityDatasetConfig CityConfig(const CliOptions& options) {
  data::CityDatasetConfig config;
  if (options.city == "BJ") {
    config = data::BeijingLikeConfig();
  } else if (options.city == "CD") {
    config = data::ChengduLikeConfig();
  } else {
    config = data::XianLikeConfig();
  }
  return data::ScaleConfig(config, options.scale);
}

int RunGenerate(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  std::vector<data::Trajectory> all = dataset.train();
  all.insert(all.end(), dataset.val().begin(), dataset.val().end());
  all.insert(all.end(), dataset.test().begin(), dataset.test().end());
  const std::string path =
      options.out.empty() ? options.city + "_trips.csv" : options.out;
  if (auto status = data::SaveTrajectoriesCsv(path, all); !status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu trajectories over %d segments to %s\n", all.size(),
              dataset.network().num_segments(), path.c_str());
  return 0;
}

/// Flushes the observability sinks the run asked for; called before every
/// successful or failed exit so a crash-adjacent run still leaves a trace.
void ExportObs(const CliOptions& options) {
  if (!options.trace_out.empty()) {
    std::string error;
    if (!obs::TraceBuffer::Global().WriteJson(options.trace_out, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
    } else {
      std::printf("wrote trace (%zu spans, %llu dropped) to %s\n",
                  obs::TraceBuffer::Global().size(),
                  static_cast<unsigned long long>(
                      obs::TraceBuffer::Global().dropped()),
                  options.trace_out.c_str());
    }
  }
  if (!options.profile_out.empty()) {
    auto& profiler = obs::Profiler::Global();
    profiler.PrintTable(stdout);
    const std::string json = profiler.ToJson();
    std::FILE* f = std::fopen(options.profile_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.profile_out.c_str());
    } else {
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote op profile to %s\n", options.profile_out.c_str());
    }
  }
  if (!options.metrics_out.empty()) {
    // Fold the memory-tracker totals in as gauges so one snapshot carries
    // the full picture.
    obs::MemoryTracker::Global().PublishGauges();
    const std::string json =
        obs::MetricsRegistry::Global().Snapshot().ToJson();
    std::FILE* f = std::fopen(options.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_out.c_str());
    } else {
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote metrics snapshot to %s\n",
                  options.metrics_out.c_str());
    }
  }
}

int RunTrain(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;
  core::BigCityModel model(&dataset, model_config);
  train::TrainConfig config;
  config.stage1_epochs = options.epochs1;
  config.stage2_epochs = options.epochs2;
  config.verbose = true;
  config.checkpoint_dir = options.checkpoint_dir;
  config.run_report_path = options.run_report;
  config.health_every_steps = options.health_every;
  config.plans = options.plans;
  train::Trainer trainer(&model, config);
  if (!options.checkpoint_dir.empty()) {
    const std::string snapshot =
        options.checkpoint_dir + "/train_state.ckpt";
    if (std::filesystem::exists(snapshot)) {
      if (auto status = trainer.ResumeFrom(snapshot); !status.ok()) {
        std::fprintf(stderr, "resume failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("resumed from %s (phase %d, epoch %d)\n",
                  snapshot.c_str(), trainer.phase(), trainer.epoch());
    }
  }
  if (auto status = trainer.RunAll(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    ExportObs(options);  // A failed run's trace is the interesting one.
    return 1;
  }
  ExportObs(options);
  const std::string path =
      options.save.empty() ? options.city + "_model.bin" : options.save;
  if (auto status = model.SaveStateToFile(path); !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %lld parameters to %s\n",
              static_cast<long long>(model.NumParameters()), path.c_str());
  return 0;
}

int RunEval(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;
  core::BigCityModel model(&dataset, model_config);
  if (options.load.empty()) {
    std::fprintf(stderr, "eval requires --load PATH\n");
    return 1;
  }
  // Checkpoints carry LoRA adapters; attach before loading.
  util::Rng lora_rng(train::TrainConfig{}.seed ^ 0xabc);
  model.backbone()->EnableLora(&lora_rng);
  if (auto status = model.LoadStateFromFile(options.load); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  train::Evaluator evaluator(&model);
  util::TablePrinter table({"Task", "Metric", "Value"});
  const auto tte = evaluator.EvaluateTravelTime();
  table.AddRow({"TTE", "MAE (min)", util::TablePrinter::Num(tte.mae, 2)});
  table.AddRow({"TTE", "MAPE (%)", util::TablePrinter::Num(tte.mape, 1)});
  const auto next = evaluator.EvaluateNextHop();
  table.AddRow({"Next hop", "ACC", util::TablePrinter::Num(next.accuracy)});
  table.AddRow({"Next hop", "MRR@5", util::TablePrinter::Num(next.mrr5)});
  if (model.classifies_users()) {
    const auto clas = evaluator.EvaluateUserClassification();
    table.AddRow({"User link", "Micro-F1",
                  util::TablePrinter::Num(clas.micro_f1)});
  } else {
    const auto clas = evaluator.EvaluateBinaryClassification();
    table.AddRow({"Pattern", "ACC", util::TablePrinter::Num(clas.accuracy)});
  }
  const auto simi = evaluator.EvaluateSimilarity();
  table.AddRow({"Similarity", "HR@10", util::TablePrinter::Num(simi.hr10)});
  const auto reco = evaluator.EvaluateRecovery(0.85);
  table.AddRow({"Recovery", "ACC@85%",
                util::TablePrinter::Num(reco.accuracy)});
  if (dataset.config().has_dynamic_features) {
    const auto one = evaluator.EvaluateTrafficPrediction(1);
    table.AddRow({"Traffic 1-step", "MAE (m/s)",
                  util::TablePrinter::Num(one.mae, 2)});
    const auto multi = evaluator.EvaluateTrafficPrediction(6);
    table.AddRow({"Traffic 6-step", "MAE (m/s)",
                  util::TablePrinter::Num(multi.mae, 2)});
    const auto tsi = evaluator.EvaluateTrafficImputation(0.25);
    table.AddRow({"Imputation", "MAE (m/s)",
                  util::TablePrinter::Num(tsi.mae, 2)});
  }
  table.Print();
  ExportObs(options);
  return 0;
}

int RunServe(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;

  // Request mix: a trajectory CSV (possibly from `generate`, possibly
  // hand-edited / corrupt — the server quarantines bad rows) or, with no
  // --requests, the dataset's own test split.
  std::vector<data::Trajectory> trajectories;
  if (!options.requests.empty()) {
    auto loaded = data::LoadTrajectoriesCsv(options.requests);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", options.requests.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    trajectories = std::move(loaded).value();
  } else {
    trajectories = dataset.test();
  }
  if (trajectories.empty()) {
    std::fprintf(stderr, "no requests to serve\n");
    return 1;
  }

  core::Task task = core::Task::kNextHop;
  if (options.serve_task == "tte") {
    task = core::Task::kTravelTimeEstimation;
  } else if (options.serve_task == "class") {
    task = core::Task::kTrajClassification;
  } else if (options.serve_task == "embed") {
    task = core::Task::kMostSimilarSearch;
  } else if (options.serve_task != "next") {
    std::fprintf(stderr, "unknown serve task: %s\n",
                 options.serve_task.c_str());
    return 1;
  }

  serve::ServeOptions serve_options;
  serve_options.num_workers = std::max(1, options.workers);
  serve_options.queue_capacity = std::max(1, options.queue_capacity);
  serve_options.default_deadline_ms = options.deadline_ms;
  serve_options.batching = options.batching;
  serve_options.batch_max = std::max(1, options.batch_max);
  serve_options.batch_window_us = std::max(0.0, options.batch_window_us);
  if (!options.batching) {
    // Per-request forwards all the way down: no shared tokenizer rep
    // cache, no KV sessions (matches bench_serve's batching-off arm).
    serve_options.tokenizer_cache_slices = 0;
    serve_options.kv_sessions = 0;
  }
  serve_options.checkpoint_path = options.load;
  serve_options.attach_lora = !options.load.empty();  // Matches eval.
  serve_options.plans = options.plans;
  serve_options.rollout.model_dir = options.model_dir;
  serve_options.hang_threshold_ms = options.hang_threshold_ms;
  serve_options.mem_budget_bytes =
      static_cast<int64_t>(options.mem_budget_mb * (1 << 20));
  serve::InferenceServer server(&dataset, model_config, serve_options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Live telemetry: ship serve.*/slo.* deltas every tick so `top` (or any
  // log tailer) can watch the run. The prelude refreshes the slo.* gauges
  // right before each snapshot, so the stream never lags a publish cycle.
  obs::TelemetryExporter telemetry;
  if (!options.telemetry_out.empty()) {
    telemetry.SetPrelude([&server] { server.PublishSlo(); });
    obs::TelemetryExporter::Options telemetry_options;
    telemetry_options.interval_ms = std::max(1.0, options.telemetry_interval_ms);
    std::string error;
    if (!telemetry.Start(options.telemetry_out, telemetry_options, &error)) {
      std::fprintf(stderr, "telemetry start failed: %s\n", error.c_str());
      server.Stop();
      return 1;
    }
  }

  int counts[serve::kNumOutcomes] = {};
  std::vector<double> latencies_us;
  latencies_us.reserve(trajectories.size());
  const auto watch_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.watch_seconds));
  size_t replayed = 0;
  // Watch mode replays the mix until the deadline so the poller has live
  // traffic to canary against; otherwise one pass.
  do {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(trajectories.size());
    for (size_t i = 0; i < trajectories.size(); ++i) {
      serve::Request request;
      request.task = task;
      request.trajectory = trajectories[i];
      request.id = replayed + i;
      futures.push_back(server.Submit(std::move(request)));
    }
    replayed += trajectories.size();
    for (auto& future : futures) {
      serve::Response response = future.get();
      counts[static_cast<int>(response.outcome)]++;
      if (response.status.ok()) latencies_us.push_back(response.total_us);
    }
  } while (std::chrono::steady_clock::now() < watch_deadline);
  server.Stop();
  telemetry.Stop();  // Final tick captures the post-drain state.
  if (telemetry.ticks() > 0) {
    std::printf("wrote %llu telemetry ticks to %s\n",
                static_cast<unsigned long long>(telemetry.ticks()),
                options.telemetry_out.c_str());
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const size_t rank = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[rank];
  };

  util::TablePrinter table({"Outcome", "Count"});
  const char* names[serve::kNumOutcomes] = {
      "ok",          "degraded", "shed",   "deadline",
      "quarantined", "rejected", "failed", "reaped"};
  for (int i = 0; i < serve::kNumOutcomes; ++i) {
    table.AddRow({names[i], util::TablePrinter::Num(counts[i], 0)});
  }
  table.AddRow({"p50 ms", util::TablePrinter::Num(percentile(0.5) / 1e3, 2)});
  table.AddRow({"p95 ms", util::TablePrinter::Num(percentile(0.95) / 1e3, 2)});
  table.AddRow({"p99 ms", util::TablePrinter::Num(percentile(0.99) / 1e3, 2)});
  table.Print();

  if (!options.model_dir.empty()) {
    const auto quarantined = server.registry()->Quarantined();
    util::TablePrinter lifecycle({"Lifecycle", "Value"});
    lifecycle.AddRow(
        {"state", serve::RolloutStateName(server.rollout_state())});
    lifecycle.AddRow({"stable version",
                      util::TablePrinter::Num(
                          static_cast<double>(server.stable_version()), 0)});
    lifecycle.AddRow({"generation",
                      util::TablePrinter::Num(
                          static_cast<double>(server.generation()), 0)});
    lifecycle.AddRow({"quarantined",
                      util::TablePrinter::Num(
                          static_cast<double>(quarantined.size()), 0)});
    lifecycle.Print();
    for (const auto& [version, reason] : quarantined) {
      std::printf("  quarantined v%llu: %s\n",
                  static_cast<unsigned long long>(version), reason.c_str());
    }
  }
  ExportObs(options);
  return 0;
}

int RunPublish(const CliOptions& options) {
  if (options.model_dir.empty()) {
    std::fprintf(stderr, "publish requires --model-dir PATH\n");
    return 1;
  }
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;
  core::BigCityModel model(&dataset, model_config);
  if (!options.load.empty()) {
    // Checkpoints carry LoRA adapters; attach before loading (same key
    // derivation as eval/serve).
    util::Rng lora_rng(train::TrainConfig{}.seed ^ 0xabc);
    model.backbone()->EnableLora(&lora_rng);
    if (auto status = model.LoadStateFromFile(options.load); !status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  const auto current = util::ReadCurrent(options.model_dir);
  const int64_t parent =
      current.ok() ? static_cast<int64_t>(current.value()) : -1;
  auto published = serve::PublishModel(options.model_dir, model, parent);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  std::printf("published version %llu (parent %lld, fingerprint %s) to %s\n",
              static_cast<unsigned long long>(published.value()),
              static_cast<long long>(parent),
              core::ConfigFingerprint(model_config).c_str(),
              options.model_dir.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// metrics / top: hand-rolled scraping of the repo's own JSON output (same
// idiom as bench_gate) — the snapshot and telemetry formats are flat enough
// that brace matching plus "key":number scanning covers them.

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[1 << 16];
  out->clear();
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  std::fclose(f);
  return true;
}

/// Returns the balanced {...} object following `label` (quotes + colon
/// included, e.g. "\"gauges\":"), or "" when absent / unbalanced.
std::string JsonObjectAfter(const std::string& json, const std::string& label) {
  const size_t pos = json.find(label);
  if (pos == std::string::npos) return "";
  const size_t open = json.find('{', pos + label.size());
  if (open == std::string::npos) return "";
  int depth = 0;
  for (size_t i = open; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) {
      return json.substr(open, i - open + 1);
    }
  }
  return "";
}

/// Collects "key":number pairs from a JSON object, skipping nested objects
/// wholesale (array-valued keys parse as 0 and are simply never read).
void ParseFlatNumbers(const std::string& object,
                      std::map<std::string, double>* out) {
  size_t i = 0;
  while (true) {
    const size_t k0 = object.find('"', i);
    if (k0 == std::string::npos) break;
    const size_t k1 = object.find('"', k0 + 1);
    if (k1 == std::string::npos) break;
    const std::string key = object.substr(k0 + 1, k1 - k0 - 1);
    size_t v = object.find(':', k1);
    if (v == std::string::npos) break;
    ++v;
    while (v < object.size() && object[v] == ' ') ++v;
    if (v < object.size() && object[v] == '{') {
      int depth = 0;
      while (v < object.size()) {
        if (object[v] == '{') ++depth;
        if (object[v] == '}' && --depth == 0) break;
        ++v;
      }
      i = v + 1;
      continue;
    }
    (*out)[key] = std::atof(object.c_str() + v);
    const size_t comma = object.find(',', v);
    if (comma == std::string::npos) break;
    i = comma + 1;
  }
}

/// One histogram's scalar fields as emitted by MetricsSnapshot::ToJson /
/// the telemetry stream ("count", "sum", "p50", "p95", "p99").
void ParseHistogramStats(const std::string& histograms_object,
                         std::map<std::string, std::map<std::string, double>>*
                             out) {
  size_t i = 1;  // Skip the outer '{'.
  while (true) {
    const size_t k0 = histograms_object.find('"', i);
    if (k0 == std::string::npos) break;
    const size_t k1 = histograms_object.find('"', k0 + 1);
    if (k1 == std::string::npos) break;
    const std::string name = histograms_object.substr(k0 + 1, k1 - k0 - 1);
    const size_t open = histograms_object.find('{', k1);
    if (open == std::string::npos) break;
    int depth = 0;
    size_t end = open;
    while (end < histograms_object.size()) {
      if (histograms_object[end] == '{') ++depth;
      if (histograms_object[end] == '}' && --depth == 0) break;
      ++end;
    }
    if (end >= histograms_object.size()) break;
    ParseFlatNumbers(histograms_object.substr(open, end - open + 1),
                     &(*out)[name]);
    i = end + 1;
  }
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// Task names found in `slo.<task>.<field>` keys, registration order lost
/// (map iteration is alphabetical) but stable across renders.
std::vector<std::string> SloTaskNames(
    const std::map<std::string, double>& gauges) {
  std::vector<std::string> tasks;
  for (const auto& [name, value] : gauges) {
    (void)value;
    if (!StartsWith(name, "slo.")) continue;
    const size_t dot = name.find('.', 4);
    if (dot == std::string::npos) continue;
    const std::string task = name.substr(4, dot - 4);
    if (std::find(tasks.begin(), tasks.end(), task) == tasks.end()) {
      tasks.push_back(task);
    }
  }
  return tasks;
}

double GaugeOr(const std::map<std::string, double>& gauges,
               const std::string& name, double fallback) {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

int RunMetrics(const CliOptions& options) {
  if (options.in_path.empty()) {
    std::fprintf(stderr, "metrics requires --in snapshot.json\n");
    return 1;
  }
  std::string json;
  if (!ReadFileToString(options.in_path, &json)) {
    std::fprintf(stderr, "cannot read %s\n", options.in_path.c_str());
    return 1;
  }
  std::map<std::string, double> gauges;
  ParseFlatNumbers(JsonObjectAfter(json, "\"gauges\":"), &gauges);
  std::map<std::string, std::map<std::string, double>> histograms;
  ParseHistogramStats(JsonObjectAfter(json, "\"histograms\":"), &histograms);

  const std::vector<std::string> tasks = SloTaskNames(gauges);
  if (!tasks.empty()) {
    util::TablePrinter slo_table({"Task", "Success", "Burn", "p50 ms",
                                  "p99 ms", "p99 OK", "Window"});
    for (const std::string& task : tasks) {
      const std::string prefix = "slo." + task + ".";
      slo_table.AddRow(
          {task,
           util::TablePrinter::Num(GaugeOr(gauges, prefix + "success_rate", 0)),
           util::TablePrinter::Num(GaugeOr(gauges, prefix + "burn_rate", 0), 2),
           util::TablePrinter::Num(
               GaugeOr(gauges, prefix + "p50_us", 0) / 1e3, 2),
           util::TablePrinter::Num(
               GaugeOr(gauges, prefix + "p99_us", 0) / 1e3, 2),
           GaugeOr(gauges, prefix + "p99_within_objective", 0) > 0 ? "yes"
                                                                   : "no",
           util::TablePrinter::Num(
               GaugeOr(gauges, prefix + "window_requests", 0), 0)});
    }
    slo_table.Print();
  }

  // Every serve.* histogram in one table; values in the histogram's own
  // unit (latency histograms are µs, serve.batch.size is a batch size).
  util::TablePrinter hist_table(
      {"Histogram", "Count", "Mean", "p50", "p95", "p99"});
  size_t rows = 0;
  for (const auto& [name, stats] : histograms) {
    if (!StartsWith(name, "serve.")) continue;
    const double count = GaugeOr(stats, "count", 0);
    hist_table.AddRow(
        {name, util::TablePrinter::Num(count, 0),
         util::TablePrinter::Num(count > 0 ? GaugeOr(stats, "sum", 0) / count
                                           : 0.0, 2),
         util::TablePrinter::Num(GaugeOr(stats, "p50", 0), 2),
         util::TablePrinter::Num(GaugeOr(stats, "p95", 0), 2),
         util::TablePrinter::Num(GaugeOr(stats, "p99", 0), 2)});
    ++rows;
  }
  if (rows > 0) hist_table.Print();
  if (tasks.empty() && rows == 0) {
    std::printf("no slo.* gauges or serve.* histograms in %s\n",
                options.in_path.c_str());
  }
  return 0;
}

/// Everything one `top` render needs, folded from the telemetry stream.
struct TopState {
  std::map<std::string, double> counters;   // Cumulative over all ticks.
  std::map<std::string, double> last_gauges;  // Latest absolute values.
  double batch_size_sum = 0;  // serve.batch.size Δsum/Δcount accumulation.
  double batch_size_count = 0;
  double first_wall_ms = 0;
  double last_wall_ms = 0;
  double last_interval_ms = 1000.0;
  size_t ticks = 0;
};

void FoldTelemetryLine(const std::string& line, TopState* state) {
  if (line.find("\"event\":\"telemetry\"") == std::string::npos) return;
  std::map<std::string, double> header;
  // A flat scan over the whole line skips the nested sections and the
  // string-valued "event", leaving exactly the header numbers.
  ParseFlatNumbers(line, &header);
  const double wall_ms = GaugeOr(header, "wall_ms", 0);
  if (state->ticks == 0) state->first_wall_ms = wall_ms;
  state->last_wall_ms = wall_ms;
  state->last_interval_ms =
      GaugeOr(header, "interval_ms", state->last_interval_ms);
  ++state->ticks;

  std::map<std::string, double> deltas;
  ParseFlatNumbers(JsonObjectAfter(line, "\"counters\":"), &deltas);
  for (const auto& [name, delta] : deltas) state->counters[name] += delta;

  std::map<std::string, double> gauges;
  ParseFlatNumbers(JsonObjectAfter(line, "\"gauges\":"), &gauges);
  for (const auto& [name, value] : gauges) state->last_gauges[name] = value;

  std::map<std::string, std::map<std::string, double>> histograms;
  ParseHistogramStats(JsonObjectAfter(line, "\"histograms\":"), &histograms);
  const auto batch = histograms.find("serve.batch.size");
  if (batch != histograms.end()) {
    state->batch_size_sum += GaugeOr(batch->second, "sum", 0);
    state->batch_size_count += GaugeOr(batch->second, "count", 0);
  }
}

void RenderTop(const TopState& state, const std::string& path) {
  // Elapsed covers the interval before the first tick too — each tick's
  // deltas describe the window ending at its wall_ms.
  const double elapsed_s =
      std::max(state.last_interval_ms,
               state.last_wall_ms - state.first_wall_ms +
                   state.last_interval_ms) /
      1e3;
  static const char* kOutcomes[serve::kNumOutcomes] = {
      "ok",          "degraded", "shed",   "deadline",
      "quarantined", "rejected", "failed", "reaped"};
  const std::vector<std::string> tasks = SloTaskNames(state.last_gauges);
  double total_requests = 0;
  util::TablePrinter table({"Task", "QPS", "Success", "Burn", "p50 ms",
                            "p99 ms", "OK", "Deg", "Shed", "Ddl", "Quar",
                            "Rej", "Fail", "Reap"});
  for (const std::string& task : tasks) {
    double outcome_counts[serve::kNumOutcomes] = {};
    double task_requests = 0;
    for (int o = 0; o < serve::kNumOutcomes; ++o) {
      outcome_counts[o] = GaugeOr(
          state.counters, "serve.outcome." + task + "." + kOutcomes[o], 0);
      task_requests += outcome_counts[o];
    }
    total_requests += task_requests;
    const std::string prefix = "slo." + task + ".";
    std::vector<std::string> row = {
        task, util::TablePrinter::Num(task_requests / elapsed_s, 1),
        util::TablePrinter::Num(
            GaugeOr(state.last_gauges, prefix + "success_rate", 0)),
        util::TablePrinter::Num(
            GaugeOr(state.last_gauges, prefix + "burn_rate", 0), 2),
        util::TablePrinter::Num(
            GaugeOr(state.last_gauges, prefix + "p50_us", 0) / 1e3, 2),
        util::TablePrinter::Num(
            GaugeOr(state.last_gauges, prefix + "p99_us", 0) / 1e3, 2)};
    for (int o = 0; o < serve::kNumOutcomes; ++o) {
      row.push_back(util::TablePrinter::Num(outcome_counts[o], 0));
    }
    table.AddRow(row);
  }
  std::printf("%s: %zu ticks, %.1fs window\n", path.c_str(), state.ticks,
              elapsed_s);
  if (tasks.empty()) {
    std::printf("no slo.* gauges yet — is the server past its first tick?\n");
  } else {
    table.Print();
  }

  auto hit_rate = [&state](const std::string& cache) {
    const double hits =
        GaugeOr(state.counters, "serve.cache." + cache + ".hit", 0);
    const double misses =
        GaugeOr(state.counters, "serve.cache." + cache + ".miss", 0);
    const double lookups = hits + misses;
    return lookups > 0 ? hits / lookups : 0.0;
  };
  util::TablePrinter summary({"Totals", "Value"});
  summary.AddRow(
      {"QPS", util::TablePrinter::Num(total_requests / elapsed_s, 1)});
  summary.AddRow(
      {"mean batch occupancy",
       util::TablePrinter::Num(state.batch_size_count > 0
                                   ? state.batch_size_sum /
                                         state.batch_size_count
                                   : 0.0, 2)});
  summary.AddRow({"tokenizer cache hit rate",
                  util::TablePrinter::Num(hit_rate("tokenizer"))});
  summary.AddRow({"kv cache hit rate", util::TablePrinter::Num(hit_rate("kv"))});
  summary.Print();
}

int RunTop(const CliOptions& options) {
  if (options.in_path.empty()) {
    std::fprintf(stderr, "top requires --in telemetry.jsonl\n");
    return 1;
  }
  while (true) {
    std::string contents;
    if (!ReadFileToString(options.in_path, &contents)) {
      std::fprintf(stderr, "cannot read %s\n", options.in_path.c_str());
      return 1;
    }
    TopState state;
    size_t start = 0;
    while (start < contents.size()) {
      size_t end = contents.find('\n', start);
      if (end == std::string::npos) end = contents.size();
      FoldTelemetryLine(contents.substr(start, end - start), &state);
      start = end + 1;
    }
    if (options.follow) std::printf("\033[2J\033[H");
    RenderTop(state, options.in_path);
    if (!options.follow) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::max(100.0, options.telemetry_interval_ms)));
  }
  return 0;
}

}  // namespace
}  // namespace bigcity

int main(int argc, char** argv) {
  bigcity::CliOptions options;
  if (!bigcity::ParseArgs(argc, argv, &options)) {
    bigcity::PrintUsage();
    return 2;
  }
  // Arm tracing before any work (dataset generation traces too). The
  // default 64K-event ring only keeps the tail of a training run (per-GEMM
  // spans dominate); a run that asked for a trace gets a 2M-event ring
  // (~80 MB peak) so the per-phase spans of a short run all survive.
  if (!options.trace_out.empty()) {
    bigcity::obs::TraceBuffer::Global().SetCapacity(size_t{1} << 21);
    bigcity::obs::SetTracingEnabled(true);
  }
  // Arm the op profiler before model construction so its GEMMs profile too.
  if (!options.profile_out.empty()) {
    bigcity::obs::SetProfilerEnabled(true);
  }
  if (options.command == "generate") return bigcity::RunGenerate(options);
  if (options.command == "train") return bigcity::RunTrain(options);
  if (options.command == "eval") return bigcity::RunEval(options);
  if (options.command == "serve") return bigcity::RunServe(options);
  if (options.command == "publish") return bigcity::RunPublish(options);
  if (options.command == "metrics") return bigcity::RunMetrics(options);
  if (options.command == "top") return bigcity::RunTop(options);
  bigcity::PrintUsage();
  return 2;
}
