// Command-line interface for the BIGCity library.
//
// Subcommands:
//   generate --city XA --scale 0.5 --out trips.csv
//       Generate a synthetic city's trajectory corpus and export it as CSV.
//   train    --city XA --scale 0.5 --save model.bin [--epochs1 N --epochs2 N]
//       Run the full two-stage training pipeline and checkpoint the model.
//   eval     --city XA --scale 0.5 --load model.bin
//       Evaluate a checkpoint on all eight tasks and print a report.
//   serve    --city XA --scale 0.5 --requests trips.csv [--task next]
//       Drive the resilient inference server with a trajectory request
//       file and print an outcome/latency summary. With --model-dir the
//       server watches the versioned model directory and hot-swaps
//       published versions through the canary gate while serving; add
//       --watch-seconds to keep replaying the request mix for that long.
//   publish  --city XA --scale 0.5 --model-dir models/ [--load model.bin]
//       Publish a checkpoint into a versioned model directory (weights +
//       CRC manifest, atomic CURRENT flip) for a watching server to pick
//       up. Without --load the freshly initialized weights are published.
//
// The --city/--scale pair must match between train and eval/serve/publish
// (the model's label space is city-specific). A checkpoint produced by
// `train` carries LoRA adapters: pass --load on both the publish and the
// serve side (or neither) so the replicas' parameter sets line up.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include <algorithm>
#include <future>
#include <vector>

#include "core/bigcity_model.h"
#include "data/csv_io.h"
#include "data/dataset.h"
#include "obs/obs.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/model_dir.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

struct CliOptions {
  std::string command;
  std::string city = "XA";
  double scale = 0.5;
  std::string out;
  std::string save;
  std::string load;
  std::string checkpoint_dir;
  int epochs1 = 2;
  int epochs2 = 6;
  int threads = 0;  // 0 = keep the default (single-threaded kernels).
  bool plans = true;  // Execution plans + tensor arenas (DESIGN.md §4.13).
  // Observability sinks (DESIGN.md §4.9); empty = off.
  std::string trace_out;    // chrome://tracing JSON of the whole run.
  std::string run_report;   // train: per-epoch JSONL run report.
  std::string metrics_out;  // metrics-registry snapshot JSON.
  std::string profile_out;  // autograd op profile: table on stdout + JSON.
  int health_every = 0;     // train: health record every N applied steps.
  // Serving (DESIGN.md §4.11).
  std::string requests;       // serve: trajectory CSV driving the request mix.
  std::string serve_task = "next";  // next | tte | class | embed.
  int workers = 2;
  int queue_capacity = 16;
  double deadline_ms = 0;     // <= 0: no per-request deadline.
  // Continuous batching (DESIGN.md §4.14).
  bool batching = true;       // --no-batching: per-request forwards.
  int batch_max = 8;          // Coalesce at most this many requests.
  double batch_window_us = 200.0;  // Max wait for batch-mates.
  // Model lifecycle (DESIGN.md §4.12).
  std::string model_dir;      // serve: watch; publish: destination.
  double watch_seconds = 0;   // serve: keep replaying this long (0 = once).
};

void PrintUsage() {
  std::printf(
      "usage: bigcity_cli <generate|train|eval|serve|publish> [options]\n"
      "  --city BJ|XA|CD   city preset (default XA)\n"
      "  --scale F         trajectory-count scale factor (default 0.5)\n"
      "  --out PATH        generate: CSV output path\n"
      "  --save PATH       train: checkpoint output path\n"
      "  --load PATH       eval: checkpoint input path\n"
      "  --epochs1 N       train: stage-1 epochs (default 2)\n"
      "  --epochs2 N       train: stage-2 epochs (default 6)\n"
      "  --checkpoint-dir D train: per-epoch crash-safe snapshots; an\n"
      "                    interrupted run resumes from D automatically\n"
      "  --threads N       kernel worker threads (default 1); results are\n"
      "                    bit-identical for any N\n"
      "  --plans on|off    train/serve: execution plans + tensor arenas\n"
      "                    (default on); off falls back to eager heap\n"
      "                    allocation — results are bit-identical either way\n"
      "  --trace-out PATH  write a chrome://tracing JSON of the run\n"
      "  --run-report PATH train: write a per-epoch JSONL run report\n"
      "                    (tokens/sec, GEMM FLOPs, guard/checkpoint counts)\n"
      "  --metrics-out PATH write the final metrics snapshot as JSON\n"
      "  --profile PATH    profile autograd ops (forward + backward): print\n"
      "                    a per-op/per-module table and write it as JSON\n"
      "  --health-every N  train: per-layer gradient/update telemetry every\n"
      "                    N applied steps, written to the run report\n"
      "  --requests PATH   serve: trajectory CSV (see generate) to replay\n"
      "  --task NAME       serve: next|tte|class|embed (default next)\n"
      "  --workers N       serve: worker threads / model replicas (default 2)\n"
      "  --queue N         serve: admission queue capacity (default 16)\n"
      "  --deadline-ms F   serve: per-request deadline; 0 = none\n"
      "  --batch-max N     serve: coalesce up to N same-task requests per\n"
      "                    forward (default 8); outputs are bit-identical\n"
      "                    to per-request forwards for any N\n"
      "  --batch-window-us F serve: max wait for batch-mates (default 200)\n"
      "  --no-batching     serve: disable the batcher stage (per-request\n"
      "                    forwards, no shared tokenizer/KV caches)\n"
      "  --model-dir D     serve: watch D for published versions and\n"
      "                    hot-swap them through the canary gate;\n"
      "                    publish: versioned destination directory\n"
      "  --watch-seconds F serve: keep replaying the request mix for F\n"
      "                    seconds (0 = one replay pass)\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 2) return false;
  options->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--no-batching") {  // The only valueless flag.
      options->batching = false;
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (flag == "--city") {
      options->city = value;
    } else if (flag == "--scale") {
      options->scale = std::atof(value.c_str());
    } else if (flag == "--out") {
      options->out = value;
    } else if (flag == "--save") {
      options->save = value;
    } else if (flag == "--load") {
      options->load = value;
    } else if (flag == "--epochs1") {
      options->epochs1 = std::atoi(value.c_str());
    } else if (flag == "--epochs2") {
      options->epochs2 = std::atoi(value.c_str());
    } else if (flag == "--checkpoint-dir") {
      options->checkpoint_dir = value;
    } else if (flag == "--threads") {
      options->threads = std::atoi(value.c_str());
    } else if (flag == "--plans") {
      options->plans = value != "off";
    } else if (flag == "--trace-out") {
      options->trace_out = value;
    } else if (flag == "--run-report") {
      options->run_report = value;
    } else if (flag == "--metrics-out") {
      options->metrics_out = value;
    } else if (flag == "--profile") {
      options->profile_out = value;
    } else if (flag == "--health-every") {
      options->health_every = std::atoi(value.c_str());
    } else if (flag == "--requests") {
      options->requests = value;
    } else if (flag == "--task") {
      options->serve_task = value;
    } else if (flag == "--workers") {
      options->workers = std::atoi(value.c_str());
    } else if (flag == "--queue") {
      options->queue_capacity = std::atoi(value.c_str());
    } else if (flag == "--deadline-ms") {
      options->deadline_ms = std::atof(value.c_str());
    } else if (flag == "--batch-max") {
      options->batch_max = std::atoi(value.c_str());
    } else if (flag == "--batch-window-us") {
      options->batch_window_us = std::atof(value.c_str());
    } else if (flag == "--model-dir") {
      options->model_dir = value;
    } else if (flag == "--watch-seconds") {
      options->watch_seconds = std::atof(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

data::CityDatasetConfig CityConfig(const CliOptions& options) {
  data::CityDatasetConfig config;
  if (options.city == "BJ") {
    config = data::BeijingLikeConfig();
  } else if (options.city == "CD") {
    config = data::ChengduLikeConfig();
  } else {
    config = data::XianLikeConfig();
  }
  return data::ScaleConfig(config, options.scale);
}

int RunGenerate(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  std::vector<data::Trajectory> all = dataset.train();
  all.insert(all.end(), dataset.val().begin(), dataset.val().end());
  all.insert(all.end(), dataset.test().begin(), dataset.test().end());
  const std::string path =
      options.out.empty() ? options.city + "_trips.csv" : options.out;
  if (auto status = data::SaveTrajectoriesCsv(path, all); !status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu trajectories over %d segments to %s\n", all.size(),
              dataset.network().num_segments(), path.c_str());
  return 0;
}

/// Flushes the observability sinks the run asked for; called before every
/// successful or failed exit so a crash-adjacent run still leaves a trace.
void ExportObs(const CliOptions& options) {
  if (!options.trace_out.empty()) {
    std::string error;
    if (!obs::TraceBuffer::Global().WriteJson(options.trace_out, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
    } else {
      std::printf("wrote trace (%zu spans, %llu dropped) to %s\n",
                  obs::TraceBuffer::Global().size(),
                  static_cast<unsigned long long>(
                      obs::TraceBuffer::Global().dropped()),
                  options.trace_out.c_str());
    }
  }
  if (!options.profile_out.empty()) {
    auto& profiler = obs::Profiler::Global();
    profiler.PrintTable(stdout);
    const std::string json = profiler.ToJson();
    std::FILE* f = std::fopen(options.profile_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.profile_out.c_str());
    } else {
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote op profile to %s\n", options.profile_out.c_str());
    }
  }
  if (!options.metrics_out.empty()) {
    // Fold the memory-tracker totals in as gauges so one snapshot carries
    // the full picture.
    obs::MemoryTracker::Global().PublishGauges();
    const std::string json =
        obs::MetricsRegistry::Global().Snapshot().ToJson();
    std::FILE* f = std::fopen(options.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_out.c_str());
    } else {
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote metrics snapshot to %s\n",
                  options.metrics_out.c_str());
    }
  }
}

int RunTrain(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;
  core::BigCityModel model(&dataset, model_config);
  train::TrainConfig config;
  config.stage1_epochs = options.epochs1;
  config.stage2_epochs = options.epochs2;
  config.verbose = true;
  config.checkpoint_dir = options.checkpoint_dir;
  config.run_report_path = options.run_report;
  config.health_every_steps = options.health_every;
  config.plans = options.plans;
  train::Trainer trainer(&model, config);
  if (!options.checkpoint_dir.empty()) {
    const std::string snapshot =
        options.checkpoint_dir + "/train_state.ckpt";
    if (std::filesystem::exists(snapshot)) {
      if (auto status = trainer.ResumeFrom(snapshot); !status.ok()) {
        std::fprintf(stderr, "resume failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("resumed from %s (phase %d, epoch %d)\n",
                  snapshot.c_str(), trainer.phase(), trainer.epoch());
    }
  }
  if (auto status = trainer.RunAll(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    ExportObs(options);  // A failed run's trace is the interesting one.
    return 1;
  }
  ExportObs(options);
  const std::string path =
      options.save.empty() ? options.city + "_model.bin" : options.save;
  if (auto status = model.SaveStateToFile(path); !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %lld parameters to %s\n",
              static_cast<long long>(model.NumParameters()), path.c_str());
  return 0;
}

int RunEval(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;
  core::BigCityModel model(&dataset, model_config);
  if (options.load.empty()) {
    std::fprintf(stderr, "eval requires --load PATH\n");
    return 1;
  }
  // Checkpoints carry LoRA adapters; attach before loading.
  util::Rng lora_rng(train::TrainConfig{}.seed ^ 0xabc);
  model.backbone()->EnableLora(&lora_rng);
  if (auto status = model.LoadStateFromFile(options.load); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  train::Evaluator evaluator(&model);
  util::TablePrinter table({"Task", "Metric", "Value"});
  const auto tte = evaluator.EvaluateTravelTime();
  table.AddRow({"TTE", "MAE (min)", util::TablePrinter::Num(tte.mae, 2)});
  table.AddRow({"TTE", "MAPE (%)", util::TablePrinter::Num(tte.mape, 1)});
  const auto next = evaluator.EvaluateNextHop();
  table.AddRow({"Next hop", "ACC", util::TablePrinter::Num(next.accuracy)});
  table.AddRow({"Next hop", "MRR@5", util::TablePrinter::Num(next.mrr5)});
  if (model.classifies_users()) {
    const auto clas = evaluator.EvaluateUserClassification();
    table.AddRow({"User link", "Micro-F1",
                  util::TablePrinter::Num(clas.micro_f1)});
  } else {
    const auto clas = evaluator.EvaluateBinaryClassification();
    table.AddRow({"Pattern", "ACC", util::TablePrinter::Num(clas.accuracy)});
  }
  const auto simi = evaluator.EvaluateSimilarity();
  table.AddRow({"Similarity", "HR@10", util::TablePrinter::Num(simi.hr10)});
  const auto reco = evaluator.EvaluateRecovery(0.85);
  table.AddRow({"Recovery", "ACC@85%",
                util::TablePrinter::Num(reco.accuracy)});
  if (dataset.config().has_dynamic_features) {
    const auto one = evaluator.EvaluateTrafficPrediction(1);
    table.AddRow({"Traffic 1-step", "MAE (m/s)",
                  util::TablePrinter::Num(one.mae, 2)});
    const auto multi = evaluator.EvaluateTrafficPrediction(6);
    table.AddRow({"Traffic 6-step", "MAE (m/s)",
                  util::TablePrinter::Num(multi.mae, 2)});
    const auto tsi = evaluator.EvaluateTrafficImputation(0.25);
    table.AddRow({"Imputation", "MAE (m/s)",
                  util::TablePrinter::Num(tsi.mae, 2)});
  }
  table.Print();
  ExportObs(options);
  return 0;
}

int RunServe(const CliOptions& options) {
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;

  // Request mix: a trajectory CSV (possibly from `generate`, possibly
  // hand-edited / corrupt — the server quarantines bad rows) or, with no
  // --requests, the dataset's own test split.
  std::vector<data::Trajectory> trajectories;
  if (!options.requests.empty()) {
    auto loaded = data::LoadTrajectoriesCsv(options.requests);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", options.requests.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    trajectories = std::move(loaded).value();
  } else {
    trajectories = dataset.test();
  }
  if (trajectories.empty()) {
    std::fprintf(stderr, "no requests to serve\n");
    return 1;
  }

  core::Task task = core::Task::kNextHop;
  if (options.serve_task == "tte") {
    task = core::Task::kTravelTimeEstimation;
  } else if (options.serve_task == "class") {
    task = core::Task::kTrajClassification;
  } else if (options.serve_task == "embed") {
    task = core::Task::kMostSimilarSearch;
  } else if (options.serve_task != "next") {
    std::fprintf(stderr, "unknown serve task: %s\n",
                 options.serve_task.c_str());
    return 1;
  }

  serve::ServeOptions serve_options;
  serve_options.num_workers = std::max(1, options.workers);
  serve_options.queue_capacity = std::max(1, options.queue_capacity);
  serve_options.default_deadline_ms = options.deadline_ms;
  serve_options.batching = options.batching;
  serve_options.batch_max = std::max(1, options.batch_max);
  serve_options.batch_window_us = std::max(0.0, options.batch_window_us);
  if (!options.batching) {
    // Per-request forwards all the way down: no shared tokenizer rep
    // cache, no KV sessions (matches bench_serve's batching-off arm).
    serve_options.tokenizer_cache_slices = 0;
    serve_options.kv_sessions = 0;
  }
  serve_options.checkpoint_path = options.load;
  serve_options.attach_lora = !options.load.empty();  // Matches eval.
  serve_options.plans = options.plans;
  serve_options.rollout.model_dir = options.model_dir;
  serve::InferenceServer server(&dataset, model_config, serve_options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  int counts[7] = {};
  std::vector<double> latencies_us;
  latencies_us.reserve(trajectories.size());
  const auto watch_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.watch_seconds));
  size_t replayed = 0;
  // Watch mode replays the mix until the deadline so the poller has live
  // traffic to canary against; otherwise one pass.
  do {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(trajectories.size());
    for (size_t i = 0; i < trajectories.size(); ++i) {
      serve::Request request;
      request.task = task;
      request.trajectory = trajectories[i];
      request.id = replayed + i;
      futures.push_back(server.Submit(std::move(request)));
    }
    replayed += trajectories.size();
    for (auto& future : futures) {
      serve::Response response = future.get();
      counts[static_cast<int>(response.outcome)]++;
      if (response.status.ok()) latencies_us.push_back(response.total_us);
    }
  } while (std::chrono::steady_clock::now() < watch_deadline);
  server.Stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const size_t rank = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[rank];
  };

  util::TablePrinter table({"Outcome", "Count"});
  const char* names[7] = {"ok",       "degraded",    "shed",    "deadline",
                          "quarantined", "rejected", "failed"};
  for (int i = 0; i < 7; ++i) {
    table.AddRow({names[i], util::TablePrinter::Num(counts[i], 0)});
  }
  table.AddRow({"p50 ms", util::TablePrinter::Num(percentile(0.5) / 1e3, 2)});
  table.AddRow({"p95 ms", util::TablePrinter::Num(percentile(0.95) / 1e3, 2)});
  table.AddRow({"p99 ms", util::TablePrinter::Num(percentile(0.99) / 1e3, 2)});
  table.Print();

  if (!options.model_dir.empty()) {
    const auto quarantined = server.registry()->Quarantined();
    util::TablePrinter lifecycle({"Lifecycle", "Value"});
    lifecycle.AddRow(
        {"state", serve::RolloutStateName(server.rollout_state())});
    lifecycle.AddRow({"stable version",
                      util::TablePrinter::Num(
                          static_cast<double>(server.stable_version()), 0)});
    lifecycle.AddRow({"generation",
                      util::TablePrinter::Num(
                          static_cast<double>(server.generation()), 0)});
    lifecycle.AddRow({"quarantined",
                      util::TablePrinter::Num(
                          static_cast<double>(quarantined.size()), 0)});
    lifecycle.Print();
    for (const auto& [version, reason] : quarantined) {
      std::printf("  quarantined v%llu: %s\n",
                  static_cast<unsigned long long>(version), reason.c_str());
    }
  }
  ExportObs(options);
  return 0;
}

int RunPublish(const CliOptions& options) {
  if (options.model_dir.empty()) {
    std::fprintf(stderr, "publish requires --model-dir PATH\n");
    return 1;
  }
  data::CityDataset dataset(CityConfig(options));
  core::BigCityConfig model_config;
  model_config.threads = options.threads;
  core::BigCityModel model(&dataset, model_config);
  if (!options.load.empty()) {
    // Checkpoints carry LoRA adapters; attach before loading (same key
    // derivation as eval/serve).
    util::Rng lora_rng(train::TrainConfig{}.seed ^ 0xabc);
    model.backbone()->EnableLora(&lora_rng);
    if (auto status = model.LoadStateFromFile(options.load); !status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  const auto current = util::ReadCurrent(options.model_dir);
  const int64_t parent =
      current.ok() ? static_cast<int64_t>(current.value()) : -1;
  auto published = serve::PublishModel(options.model_dir, model, parent);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  std::printf("published version %llu (parent %lld, fingerprint %s) to %s\n",
              static_cast<unsigned long long>(published.value()),
              static_cast<long long>(parent),
              core::ConfigFingerprint(model_config).c_str(),
              options.model_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace bigcity

int main(int argc, char** argv) {
  bigcity::CliOptions options;
  if (!bigcity::ParseArgs(argc, argv, &options)) {
    bigcity::PrintUsage();
    return 2;
  }
  // Arm tracing before any work (dataset generation traces too). The
  // default 64K-event ring only keeps the tail of a training run (per-GEMM
  // spans dominate); a run that asked for a trace gets a 2M-event ring
  // (~80 MB peak) so the per-phase spans of a short run all survive.
  if (!options.trace_out.empty()) {
    bigcity::obs::TraceBuffer::Global().SetCapacity(size_t{1} << 21);
    bigcity::obs::SetTracingEnabled(true);
  }
  // Arm the op profiler before model construction so its GEMMs profile too.
  if (!options.profile_out.empty()) {
    bigcity::obs::SetProfilerEnabled(true);
  }
  if (options.command == "generate") return bigcity::RunGenerate(options);
  if (options.command == "train") return bigcity::RunTrain(options);
  if (options.command == "eval") return bigcity::RunEval(options);
  if (options.command == "serve") return bigcity::RunServe(options);
  if (options.command == "publish") return bigcity::RunPublish(options);
  bigcity::PrintUsage();
  return 2;
}
