// Chaos/soak harness for the model lifecycle (DESIGN.md §4.12) and the
// self-healing runtime (DESIGN.md §4.16).
//
// Sustains a mixed-task request load against an InferenceServer while a
// deterministic schedule publishes good, corrupt-CRC, config-mismatched,
// and NaN-weight model versions and fires the lifecycle fault sites
// (torn CURRENT-pointer write, slow staged load, canary latency
// inflation), plus the self-healing sites: a wedged-worker stall that the
// watchdog must reap, and a memory leak that must drive the overload
// controller into shedding and back. Invariants checked throughout:
//
//   1. zero crashes — the process reaching its summary is the invariant;
//   2. every request terminates with a definite Status (no broken
//      promises, no hangs);
//   3. request error rate stays bounded during swaps: a healthy swap
//      fails nothing, a poisoned canary fails at most a canary window of
//      requests with kInternal before rollback;
//   4. bad versions are quarantined while the server keeps serving;
//   5. after an automatic rollback, responses are bit-identical to the
//      pre-push stable model's;
//   6. no permanent throughput loss after a hang: once the watchdog reaps
//      a wedged worker and spins up its replacement, a post-reap window
//      must recover to within 10% of the pre-hang baseline;
//   7. peak sampled memory stays under the configured budget — admission
//      shedding kicks in before the injected leak can blow through it,
//      and recovery after FreeLeaks() is monotone back to normal.
//
// Exit code 0 iff every invariant held. --json writes a machine-readable
// report (counts, per-event results, violations, metrics snapshot) for
// CI validation.
//
//   chaos_soak --seconds 30 --seed 7 [--workers 3] [--load-threads 3]
//              [--model-dir PATH] [--json PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "nn/tensor.h"
#include "obs/obs.h"
#include "serve/model_registry.h"
#include "serve/overload.h"
#include "serve/rollout.h"
#include "serve/server.h"
#include "util/fault_injection.h"
#include "util/model_dir.h"

namespace bigcity {
namespace {

using Clock = std::chrono::steady_clock;

struct SoakOptions {
  double seconds = 30;
  uint64_t seed = 7;
  int workers = 3;
  int load_threads = 3;
  std::string model_dir;
  std::string json_out;
};

bool ParseArgs(int argc, char** argv, SoakOptions* options) {
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--seconds") {
      options->seconds = std::atof(value.c_str());
    } else if (flag == "--seed") {
      options->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (flag == "--workers") {
      options->workers = std::atoi(value.c_str());
    } else if (flag == "--load-threads") {
      options->load_threads = std::atoi(value.c_str());
    } else if (flag == "--model-dir") {
      options->model_dir = value;
    } else if (flag == "--json") {
      options->json_out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return options->seconds > 0 && options->workers >= 1 &&
         options->load_threads >= 1;
}

/// Outcome tallies across all load threads (atomics: many writers).
struct LoadStats {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> definite{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> nonfinite_internal{0};
  std::atomic<uint64_t> shed{0};      // kResourceExhausted: overload/queue.
  std::atomic<uint64_t> deadline{0};  // kDeadlineExceeded: reap/stale-drop.
  std::atomic<uint64_t> other_failures{0};
  std::atomic<uint64_t> broken_promises{0};
};

/// Per-event-type tallies, written only by the chaos thread.
struct EventStats {
  int good_swaps = 0;
  int slow_good_swaps = 0;
  int corrupt_published = 0;
  int mismatch_published = 0;
  int nan_rollbacks = 0;
  int latency_rollbacks = 0;
  int torn_publishes = 0;
  int worker_reaps = 0;  // Wedged-worker stall -> watchdog reap+replace.
  int leak_sheds = 0;    // Injected leak -> shedding -> monotone recovery.
};

class ChaosSoak {
 public:
  explicit ChaosSoak(const SoakOptions& options) : options_(options) {
    auto config = data::ScaleConfig(data::XianLikeConfig(), 0.1);
    config.city.grid_width = 5;
    config.city.grid_height = 5;
    dataset_ = std::make_unique<data::CityDataset>(config);
    model_config_.d_model = 32;
    model_config_.num_heads = 2;
    model_config_.num_layers = 1;
    model_config_.spatial_dim = 16;
    model_config_.gat_hidden = 16;
    prototype_ =
        std::make_unique<core::BigCityModel>(dataset_.get(), model_config_);
  }

  int Run();

 private:
  // --- Model publication helpers ----------------------------------------

  core::BigCityModel MakeVariant(uint64_t seed) const {
    core::BigCityConfig config = model_config_;
    config.seed = seed;
    return core::BigCityModel(dataset_.get(), config);
  }

  static void Poison(core::BigCityModel* model) {
    for (nn::Tensor parameter : model->backbone()->Parameters()) {
      parameter.data()[0] = std::numeric_limits<float>::quiet_NaN();
    }
  }

  /// Publishes a version whose weights are corrupted *after* the manifest
  /// CRC was computed, then flips CURRENT to it: the registry must catch
  /// the mismatch and quarantine.
  bool PublishCorrupt(uint64_t* version_out) {
    const core::BigCityModel model = MakeVariant(next_variant_seed_++);
    const std::vector<uint64_t> existing =
        util::ListVersions(options_.model_dir);
    const uint64_t version = existing.empty() ? 1 : existing.back() + 1;
    const std::string version_dir =
        util::VersionPath(options_.model_dir, version);
    if (!util::EnsureDirectory(version_dir).ok()) return false;
    const std::string weights = util::WeightsPath(version_dir);
    if (!model.SaveStateToFile(weights).ok()) return false;
    util::VersionManifest manifest;
    manifest.version = version;
    manifest.config_fingerprint = core::ConfigFingerprint(model_config_);
    if (!util::FileCrc32(weights, &manifest.weight_crc,
                         &manifest.weight_bytes)
             .ok()) {
      return false;
    }
    if (!util::WriteManifest(version_dir, manifest).ok()) return false;
    {
      std::fstream file(weights, std::ios::in | std::ios::out |
                                     std::ios::binary);
      if (!file.good()) return false;
      file.seekg(200);
      char byte = 0;
      file.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x5A);
      file.seekp(200);
      file.write(&byte, 1);
    }
    if (!util::PublishCurrent(options_.model_dir, version).ok()) return false;
    *version_out = version;
    return true;
  }

  // --- Invariant helpers -------------------------------------------------

  void Violation(const std::string& what) {
    violations_.push_back(what);
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", what.c_str());
  }

  serve::Request FixedProbeRequest() const {
    serve::Request request;
    request.task = core::Task::kNextHop;
    for (const auto& t : dataset_->test()) {
      if (t.length() >= 5) {
        request.trajectory = t;
        return request;
      }
    }
    request.trajectory = dataset_->test().front();
    return request;
  }

  /// Serves the fixed probe until a successful response from the expected
  /// stable version arrives (canary-phase probes may land on the canary
  /// worker and legitimately fail). Empty tensor on timeout.
  nn::Tensor ProbeStable(uint64_t expected_version, double timeout_ms) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               timeout_ms));
    while (Clock::now() < deadline) {
      serve::Response response = server_->ServeSync(FixedProbeRequest());
      if (response.status.ok() &&
          response.model_version == expected_version) {
        return response.output;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return nn::Tensor();
  }

  bool WaitQuarantined(uint64_t version, double timeout_ms) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               timeout_ms));
    while (Clock::now() < deadline) {
      if (server_->registry()->IsQuarantined(version)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  bool WaitUntil(const std::function<bool()>& pred, double timeout_ms) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               timeout_ms));
    while (Clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
  }

  /// Successful-responses-per-second over one `window_ms` observation
  /// window of the background load threads.
  double MeasureOkThroughput(double window_ms) {
    const uint64_t before = load_.ok.load(std::memory_order_relaxed);
    const Clock::time_point start = Clock::now();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(window_ms));
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    const uint64_t after = load_.ok.load(std::memory_order_relaxed);
    return elapsed_s > 0
               ? static_cast<double>(after - before) / elapsed_s
               : 0.0;
  }

  /// SLO telemetry consistency (DESIGN.md §4.15): the tracker's published
  /// window statistics must stay internally coherent through swaps,
  /// rollbacks, and fault injection. Burn-rate *bounds* are deliberately
  /// not asserted — chaos events exist to burn error budget.
  void CheckSloInvariants() {
    const auto snapshots = server_->slo_tracker().SnapshotAll();
#if BIGCITY_OBS
    if (snapshots.empty()) {
      Violation("slo tracker registered no tasks");
    }
#endif
    for (const auto& s : snapshots) {
      if (s.success_rate < 0.0 || s.success_rate > 1.0) {
        Violation("slo " + s.name + ": success_rate outside [0, 1]");
      }
      if (s.p50_us < 0.0 || s.p99_us < s.p50_us) {
        Violation("slo " + s.name + ": p50/p99 ordering broken");
      }
      if (s.window_requests > s.objective.window ||
          s.window_requests > s.total) {
        Violation("slo " + s.name + ": window overfull");
      }
      const double budget = 1.0 - s.objective.success_rate;
      if (budget > 0) {
        const double expected = (1.0 - s.success_rate) / budget;
        if (std::abs(s.burn_rate - expected) >
            1e-6 * std::max(1.0, expected)) {
          Violation("slo " + s.name +
                    ": burn rate inconsistent with window error rate");
        }
      }
      if (s.p99_within_objective != (s.p99_us <= s.objective.p99_us)) {
        Violation("slo " + s.name +
                  ": p99_within_objective contradicts p99_us");
      }
    }
  }

  // --- Load + chaos ------------------------------------------------------

  void LoadLoop(int thread_index);
  void RunEvent(int event_index);
  void WriteJson() const;

  const SoakOptions options_;
  std::unique_ptr<data::CityDataset> dataset_;
  core::BigCityConfig model_config_;
  std::unique_ptr<core::BigCityModel> prototype_;
  std::unique_ptr<serve::InferenceServer> server_;

  LoadStats load_;
  EventStats events_;
  std::vector<std::string> violations_;
  std::atomic<bool> stop_load_{false};
  uint64_t next_variant_seed_ = 1000;
  int64_t mem_budget_bytes_ = 0;
};

void ChaosSoak::LoadLoop(int thread_index) {
  // Deterministic per-thread request mix over all eight task heads.
  std::vector<data::Trajectory> trajectories;
  for (const auto& t : dataset_->test()) {
    if (t.length() >= 5) trajectories.push_back(t);
  }
  if (trajectories.empty()) trajectories = dataset_->test();
  const int num_segments = dataset_->network().num_segments();
  uint64_t i = static_cast<uint64_t>(thread_index) * 7919;

  while (!stop_load_.load(std::memory_order_relaxed)) {
    serve::Request request;
    const data::Trajectory& trajectory =
        trajectories[i % trajectories.size()];
    switch (i % 8) {
      case 0:
        request.task = core::Task::kNextHop;
        request.trajectory = trajectory;
        break;
      case 1:
        request.task = core::Task::kTravelTimeEstimation;
        request.trajectory = trajectory;
        break;
      case 2:
        request.task = core::Task::kTrajClassification;
        request.trajectory = trajectory;
        break;
      case 3:
        request.task = core::Task::kMostSimilarSearch;
        request.trajectory = trajectory;
        break;
      case 4: {
        request.task = core::Task::kTrajRecovery;
        request.trajectory = trajectory;
        const int length = trajectory.length();
        request.kept = {0, length / 2, length - 1};
        break;
      }
      case 5:
        request.task = core::Task::kTrafficOneStep;
        request.segment = static_cast<int>(i) % num_segments;
        request.start_slice = static_cast<int>(i) % 40;
        break;
      case 6:
        request.task = core::Task::kTrafficMultiStep;
        request.segment = static_cast<int>(i) % num_segments;
        request.start_slice = static_cast<int>(i) % 40;
        request.horizon = 4;
        break;
      case 7:
        request.task = core::Task::kTrafficImputation;
        request.segment = static_cast<int>(i) % num_segments;
        request.start_slice = static_cast<int>(i) % 40;
        request.window = 12;
        request.masked = {2, 5, 9};
        break;
    }
    ++i;
    load_.submitted.fetch_add(1, std::memory_order_relaxed);
    try {
      serve::Response response = server_->Submit(std::move(request)).get();
      load_.definite.fetch_add(1, std::memory_order_relaxed);
      if (response.status.ok()) {
        if (response.degraded) {
          load_.degraded.fetch_add(1, std::memory_order_relaxed);
        } else {
          load_.ok.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (response.status.code() == util::StatusCode::kInternal) {
        // Expected (bounded) while a NaN canary is being judged.
        load_.nonfinite_internal.fetch_add(1, std::memory_order_relaxed);
      } else if (response.status.code() ==
                 util::StatusCode::kResourceExhausted) {
        // Expected while the overload controller sheds admissions (or the
        // admission queue is full under a tightened bound).
        load_.shed.fetch_add(1, std::memory_order_relaxed);
      } else if (response.status.code() ==
                 util::StatusCode::kDeadlineExceeded) {
        // Expected (bounded) when the watchdog reaps a wedged worker's
        // in-flight requests or the CoDel sojourn bound drops stale ones.
        load_.deadline.fetch_add(1, std::memory_order_relaxed);
      } else {
        load_.other_failures.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      // A broken promise would mean a request was abandoned — the harness
      // treats any exception from .get() as an indefinite request.
      load_.broken_promises.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ChaosSoak::RunEvent(int event_index) {
  const uint64_t stable_before = server_->stable_version();
  const char* kNames[] = {"good",     "corrupt", "nan",     "slow_good",
                          "mismatch", "torn",    "latency", "stall",
                          "leak"};
  const int kind = event_index % 9;
  std::printf("[chaos] event %d: %s (stable v%llu)\n", event_index,
              kNames[kind], static_cast<unsigned long long>(stable_before));

  switch (kind) {
    case 0:    // Healthy publish: must promote without failing a request.
    case 3: {  // Same, under an injected slow staged load.
      if (kind == 3) {
        util::FaultInjection::Arm(util::kFaultRolloutSlowLoad, 0, 1, 300);
      }
      auto published =
          serve::PublishModel(options_.model_dir,
                              MakeVariant(next_variant_seed_++),
                              static_cast<int64_t>(stable_before));
      if (!published.ok()) {
        Violation("good publish failed: " + published.status().message());
        return;
      }
      if (!server_->WaitForStableVersion(published.value(), 30000)) {
        Violation("healthy version " + std::to_string(published.value()) +
                  " was not promoted");
        return;
      }
      (kind == 0 ? events_.good_swaps : events_.slow_good_swaps)++;
      if (kind == 3) util::FaultInjection::Disarm(util::kFaultRolloutSlowLoad);
      break;
    }
    case 1: {  // Corrupt CRC: quarantine, keep serving, never swap.
      uint64_t version = 0;
      if (!PublishCorrupt(&version)) {
        Violation("corrupt publish plumbing failed");
        return;
      }
      if (!WaitQuarantined(version, 20000)) {
        Violation("corrupt version " + std::to_string(version) +
                  " was not quarantined");
        return;
      }
      if (server_->stable_version() != stable_before) {
        Violation("corrupt version changed the stable version");
        return;
      }
      if (!ProbeStable(stable_before, 10000).is_valid()) {
        Violation("server stopped serving after corrupt publish");
        return;
      }
      ++events_.corrupt_published;
      break;
    }
    case 2: {  // NaN weights: canary fails, rollback is bit-identical.
      const nn::Tensor before = ProbeStable(stable_before, 10000);
      if (!before.is_valid()) {
        Violation("no stable probe before NaN publish");
        return;
      }
      core::BigCityModel poisoned = MakeVariant(next_variant_seed_++);
      Poison(&poisoned);
      auto published = serve::PublishModel(
          options_.model_dir, poisoned, static_cast<int64_t>(stable_before));
      if (!published.ok()) {
        Violation("NaN publish failed: " + published.status().message());
        return;
      }
      if (!server_->WaitForRolloutState(serve::RolloutState::kRolledBack,
                                        30000) ||
          !WaitQuarantined(published.value(), 5000)) {
        Violation("NaN version " + std::to_string(published.value()) +
                  " was not rolled back + quarantined");
        return;
      }
      if (server_->stable_version() != stable_before) {
        Violation("NaN rollback did not restore the stable version");
        return;
      }
      const nn::Tensor after = ProbeStable(stable_before, 10000);
      if (!after.is_valid() || after.data() != before.data()) {
        Violation("post-rollback output not bit-identical to pre-push");
        return;
      }
      ++events_.nan_rollbacks;
      break;
    }
    case 4: {  // Config fingerprint mismatch: quarantine + continue.
      auto published = serve::PublishModelWithFingerprint(
          options_.model_dir, MakeVariant(next_variant_seed_++),
          "cfg-mismatch");
      if (!published.ok()) {
        Violation("mismatch publish failed: " +
                  published.status().message());
        return;
      }
      if (!WaitQuarantined(published.value(), 20000)) {
        Violation("mismatched version " +
                  std::to_string(published.value()) +
                  " was not quarantined");
        return;
      }
      if (server_->stable_version() != stable_before ||
          !ProbeStable(stable_before, 10000).is_valid()) {
        Violation("server degraded after mismatch publish");
        return;
      }
      ++events_.mismatch_published;
      break;
    }
    case 5: {  // Torn pointer write: invisible to the server.
      const auto current_before = util::ReadCurrent(options_.model_dir);
      {
        util::ScopedFault torn(util::kFaultPublishTornPointer, 0, 1, 3);
        auto published = serve::PublishModel(
            options_.model_dir, MakeVariant(next_variant_seed_++),
            static_cast<int64_t>(stable_before));
        if (published.ok()) {
          Violation("torn publish unexpectedly succeeded");
          return;
        }
      }
      const auto current_after = util::ReadCurrent(options_.model_dir);
      const bool pointer_intact =
          current_before.ok()
              ? (current_after.ok() &&
                 current_after.value() == current_before.value())
              : !current_after.ok();
      if (!pointer_intact) {
        Violation("torn pointer write became visible to readers");
        return;
      }
      if (server_->stable_version() != stable_before ||
          !ProbeStable(stable_before, 10000).is_valid()) {
        Violation("server disturbed by torn publish");
        return;
      }
      ++events_.torn_publishes;
      break;
    }
    case 6: {  // Canary latency inflation: gate must roll back.
      util::FaultInjection::Arm(util::kFaultRolloutCanaryLatency, 0,
                                1 << 20, 5'000'000);
      auto published =
          serve::PublishModel(options_.model_dir,
                              MakeVariant(next_variant_seed_++),
                              static_cast<int64_t>(stable_before));
      if (!published.ok()) {
        Violation("latency-event publish failed: " +
                  published.status().message());
        util::FaultInjection::Disarm(util::kFaultRolloutCanaryLatency);
        return;
      }
      const bool rolled_back = server_->WaitForRolloutState(
          serve::RolloutState::kRolledBack, 30000);
      util::FaultInjection::Disarm(util::kFaultRolloutCanaryLatency);
      if (!rolled_back || !WaitQuarantined(published.value(), 5000) ||
          server_->stable_version() != stable_before) {
        Violation("latency-inflated canary was not rolled back");
        return;
      }
      ++events_.latency_rollbacks;
      break;
    }
    case 7: {  // Wedged worker: watchdog reaps + replaces, throughput
               // recovers to the pre-hang baseline.
      // Baseline is the smaller of two observation windows so one lucky
      // window can't set an unreachable recovery bar.
      const double baseline = std::min(MeasureOkThroughput(300),
                                       MeasureOkThroughput(300));
      const uint64_t reaps_before = server_->watchdog_reaps();
      const uint64_t replacements_before = server_->watchdog_replacements();
      // One firing, parked far past the hang threshold; Disarm below
      // releases the wedged thread early once the reap is confirmed.
      util::FaultInjection::Arm(util::kFaultServeWorkerStall, 0, 1, 60000);
      const bool reaped = WaitUntil(
          [&] { return server_->watchdog_reaps() > reaps_before; }, 15000);
      if (!reaped) {
        util::FaultInjection::Disarm(util::kFaultServeWorkerStall);
        Violation("wedged worker was not reaped within 15s");
        return;
      }
      const bool replaced = WaitUntil(
          [&] {
            return server_->watchdog_replacements() > replacements_before;
          },
          15000);
      util::FaultInjection::Disarm(util::kFaultServeWorkerStall);
      if (!replaced) {
        Violation("reaped worker was not replaced within 15s");
        return;
      }
      // No permanent throughput loss: some post-reap window must recover
      // to within 10% of the pre-hang baseline.
      bool recovered = baseline <= 0;
      for (int window = 0; window < 20 && !recovered; ++window) {
        recovered = MeasureOkThroughput(300) >= 0.9 * baseline;
      }
      if (!recovered) {
        Violation("throughput never recovered to 90% of the pre-hang "
                  "baseline after a reap");
        return;
      }
      ++events_.worker_reaps;
      break;
    }
    case 8: {  // Injected leak: shedding engages before the budget is
               // blown, then recovery is monotone after the leak is freed.
      const int64_t current = serve::OverloadController::CurrentMemoryBytes();
      // Land just under the budget: far enough above the high watermark
      // (0.90) to force shedding, with headroom left so the "peak stays
      // under budget" invariant genuinely tests admission control.
      const int64_t target =
          static_cast<int64_t>(0.93 * static_cast<double>(mem_budget_bytes_));
      const int64_t leak_bytes =
          std::max<int64_t>(target - current, 1 << 20);
      const uint64_t sheds_before = server_->overload_sheds();
      util::FaultInjection::Arm(util::kFaultServeWorkerLeak, 0, 1,
                                leak_bytes);
      const bool shedding = WaitUntil(
          [&] {
            return server_->overload()->state() ==
                   serve::OverloadController::State::kShedding;
          },
          10000);
      if (!shedding) {
        util::FaultInjection::Disarm(util::kFaultServeWorkerLeak);
        util::FaultInjection::FreeLeaks();
        Violation("injected leak did not drive the overload controller "
                  "into shedding");
        return;
      }
      if (!WaitUntil([&] { return server_->overload_sheds() > sheds_before; },
                     10000)) {
        util::FaultInjection::Disarm(util::kFaultServeWorkerLeak);
        util::FaultInjection::FreeLeaks();
        Violation("shedding state never shed an admission under load");
        return;
      }
      util::FaultInjection::Disarm(util::kFaultServeWorkerLeak);
      util::FaultInjection::FreeLeaks();
      if (!WaitUntil(
              [&] {
                return server_->overload()->state() ==
                       serve::OverloadController::State::kNormal;
              },
              10000)) {
        Violation("overload controller did not recover to normal after "
                  "the leak was freed");
        return;
      }
      if (!ProbeStable(stable_before, 10000).is_valid()) {
        Violation("server stopped serving after overload recovery");
        return;
      }
      ++events_.leak_sheds;
      break;
    }
  }
}

void ChaosSoak::WriteJson() const {
  if (options_.json_out.empty()) return;
  std::FILE* f = std::fopen(options_.json_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", options_.json_out.c_str());
    return;
  }
  const auto quarantined = server_->registry()->Quarantined();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"seconds\": %.1f,\n", options_.seconds);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(options_.seed));
  std::fprintf(
      f,
      "  \"requests\": {\"submitted\": %llu, \"definite\": %llu, "
      "\"ok\": %llu, \"degraded\": %llu, \"nonfinite_internal\": %llu, "
      "\"shed\": %llu, \"deadline\": %llu, "
      "\"other_failures\": %llu, \"broken_promises\": %llu},\n",
      static_cast<unsigned long long>(load_.submitted.load()),
      static_cast<unsigned long long>(load_.definite.load()),
      static_cast<unsigned long long>(load_.ok.load()),
      static_cast<unsigned long long>(load_.degraded.load()),
      static_cast<unsigned long long>(load_.nonfinite_internal.load()),
      static_cast<unsigned long long>(load_.shed.load()),
      static_cast<unsigned long long>(load_.deadline.load()),
      static_cast<unsigned long long>(load_.other_failures.load()),
      static_cast<unsigned long long>(load_.broken_promises.load()));
  std::fprintf(
      f,
      "  \"events\": {\"good_swaps\": %d, \"slow_good_swaps\": %d, "
      "\"corrupt_published\": %d, \"mismatch_published\": %d, "
      "\"nan_rollbacks\": %d, \"latency_rollbacks\": %d, "
      "\"torn_publishes\": %d, \"worker_reaps\": %d, "
      "\"leak_sheds\": %d},\n",
      events_.good_swaps, events_.slow_good_swaps,
      events_.corrupt_published, events_.mismatch_published,
      events_.nan_rollbacks, events_.latency_rollbacks,
      events_.torn_publishes, events_.worker_reaps, events_.leak_sheds);
  std::fprintf(
      f,
      "  \"watchdog\": {\"hangs\": %llu, \"reaps\": %llu, "
      "\"replacements\": %llu, \"overload_sheds\": %llu, "
      "\"stale_drops\": %llu, \"overload_state\": \"%s\", "
      "\"peak_sampled_bytes\": %lld, \"mem_budget_bytes\": %lld},\n",
      static_cast<unsigned long long>(server_->watchdog_hangs()),
      static_cast<unsigned long long>(server_->watchdog_reaps()),
      static_cast<unsigned long long>(server_->watchdog_replacements()),
      static_cast<unsigned long long>(server_->overload_sheds()),
      static_cast<unsigned long long>(server_->stale_drops()),
      serve::OverloadController::StateName(server_->overload()->state()),
      static_cast<long long>(server_->overload()->peak_sampled_bytes()),
      static_cast<long long>(mem_budget_bytes_));
  std::fprintf(
      f,
      "  \"server\": {\"generation\": %llu, \"stable_version\": %llu, "
      "\"quarantined\": %zu},\n",
      static_cast<unsigned long long>(server_->generation()),
      static_cast<unsigned long long>(server_->stable_version()),
      quarantined.size());
  const auto slo = server_->slo_tracker().SnapshotAll();
  std::fprintf(f, "  \"slo\": [");
  for (size_t i = 0; i < slo.size(); ++i) {
    const auto& s = slo[i];
    std::fprintf(f,
                 "%s{\"task\": \"%s\", \"window_requests\": %llu, "
                 "\"success_rate\": %.6f, \"burn_rate\": %.6f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"p99_within_objective\": %s}",
                 i == 0 ? "" : ", ", s.name.c_str(),
                 static_cast<unsigned long long>(s.window_requests),
                 s.success_rate, s.burn_rate, s.p50_us, s.p99_us,
                 s.p99_within_objective ? "true" : "false");
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"violations\": [");
  for (size_t i = 0; i < violations_.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 violations_[i].c_str());
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"pass\": %s,\n",
               violations_.empty() ? "true" : "false");
  std::fprintf(f, "  \"metrics\": %s\n",
               obs::MetricsRegistry::Global().Snapshot().ToJson().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote chaos report to %s\n", options_.json_out.c_str());
}

int ChaosSoak::Run() {
  serve::ServeOptions serve_options;
  serve_options.num_workers = options_.workers;
  serve_options.queue_capacity = 32;
  serve_options.retry_backoff_ms = 0.1;
  serve_options.rollout.model_dir = options_.model_dir;
  serve_options.rollout.poll_interval_ms = 10;
  // The hammering load mix keeps hitting trajectories the freshly staged
  // replica has never tokenized, so its earliest forwards run an order of
  // magnitude slower than the warm stable cohort's. Slow start discards
  // those cold samples and the gate judges the next warm window; the
  // injected canary fault (seconds per forward) inflates every sample, so
  // the latency event still trips by orders of magnitude.
  serve_options.rollout.canary_slow_start_samples = 48;
  serve_options.rollout.canary_min_requests = 96;
  serve_options.rollout.canary_latency_inflation = 10.0;
  serve_options.rollout.canary_timeout_ms = 20000;
  // Self-healing under test (DESIGN.md §4.16): a tight hang threshold so
  // the stall event reaps within one observation window, and a memory
  // budget sized from the pre-start footprint so only the injected leak —
  // never organic serving allocations — can cross the watermarks.
  serve_options.hang_threshold_ms = 150;
  serve_options.watchdog_poll_ms = 5;
  mem_budget_bytes_ =
      6 * serve::OverloadController::CurrentMemoryBytes() +
      (int64_t{96} << 20);
  serve_options.mem_budget_bytes = mem_budget_bytes_;
  server_ = std::make_unique<serve::InferenceServer>(
      dataset_.get(), model_config_, serve_options, prototype_.get());
  if (auto status = server_->Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::vector<std::thread> load_threads;
  load_threads.reserve(static_cast<size_t>(options_.load_threads));
  for (int i = 0; i < options_.load_threads; ++i) {
    load_threads.emplace_back([this, i] { LoadLoop(i); });
  }

  // Deterministic schedule: the seed offsets the starting event so fixed
  // seeds reproduce exactly while different seeds reorder the pressure.
  const Clock::time_point soak_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options_.seconds));
  int event_index = static_cast<int>(options_.seed % 9);
  int events_run = 0;
  // Always complete at least one full cycle (all nine event kinds), then
  // keep cycling until the time budget is spent.
  while (events_run < 9 || Clock::now() < soak_deadline) {
    RunEvent(event_index);
    ++event_index;
    ++events_run;
    if (events_run >= 9 && Clock::now() >= soak_deadline) break;
  }

  stop_load_.store(true, std::memory_order_relaxed);
  for (std::thread& thread : load_threads) thread.join();
  server_->Stop();

  // Cross-thread invariants, judged after the dust settles.
  if (load_.definite.load() + load_.broken_promises.load() !=
      load_.submitted.load()) {
    Violation("request accounting leak: submitted != definite");
  }
  if (load_.broken_promises.load() != 0) {
    Violation(std::to_string(load_.broken_promises.load()) +
              " requests ended without a definite Status");
  }
  if (load_.other_failures.load() != 0) {
    Violation(std::to_string(load_.other_failures.load()) +
              " unexpected (non-kInternal) request failures under load");
  }
  const uint64_t nan_budget =
      200 * static_cast<uint64_t>(std::max(1, events_.nan_rollbacks));
  if (load_.nonfinite_internal.load() > nan_budget) {
    Violation("canary error window unbounded: " +
              std::to_string(load_.nonfinite_internal.load()) +
              " kInternal responses (budget " +
              std::to_string(nan_budget) + ")");
  }
  // Each reap terminates only the wedged worker's in-flight requests (one
  // batch at most); anything beyond a small per-reap budget means healthy
  // requests are being deadline-failed.
  const uint64_t deadline_budget =
      64 * static_cast<uint64_t>(std::max(1, events_.worker_reaps));
  if (load_.deadline.load() > deadline_budget) {
    Violation("reap blast radius unbounded: " +
              std::to_string(load_.deadline.load()) +
              " kDeadlineExceeded responses (budget " +
              std::to_string(deadline_budget) + ")");
  }
  // Shedding must be a response to injected pressure, never organic load:
  // the budget is sized 6x above the pre-start footprint.
  if (events_.leak_sheds == 0 && load_.shed.load() > 0) {
    Violation("admissions were shed without injected memory pressure");
  }
  if (events_.leak_sheds > 0 &&
      server_->overload()->peak_sampled_bytes() >= mem_budget_bytes_) {
    Violation("peak sampled memory " +
              std::to_string(server_->overload()->peak_sampled_bytes()) +
              " reached the budget " + std::to_string(mem_budget_bytes_));
  }
  if (load_.submitted.load() == 0) {
    Violation("load generator produced no requests");
  }
  CheckSloInvariants();

  std::printf(
      "\nchaos soak: %llu requests (%llu ok, %llu nonfinite-internal, "
      "%llu shed, %llu deadline, %llu other failures), %d events "
      "(%d+%d good swaps, %d corrupt, %d mismatch, %d nan-rollback, "
      "%d latency-rollback, %d torn, %d reap, %d leak-shed), "
      "generation %llu, stable v%llu, %zu quarantined, "
      "%llu reaps / %llu replacements, peak %lld / budget %lld bytes\n",
      static_cast<unsigned long long>(load_.submitted.load()),
      static_cast<unsigned long long>(load_.ok.load()),
      static_cast<unsigned long long>(load_.nonfinite_internal.load()),
      static_cast<unsigned long long>(load_.shed.load()),
      static_cast<unsigned long long>(load_.deadline.load()),
      static_cast<unsigned long long>(load_.other_failures.load()),
      events_run, events_.good_swaps, events_.slow_good_swaps,
      events_.corrupt_published, events_.mismatch_published,
      events_.nan_rollbacks, events_.latency_rollbacks,
      events_.torn_publishes, events_.worker_reaps, events_.leak_sheds,
      static_cast<unsigned long long>(server_->generation()),
      static_cast<unsigned long long>(server_->stable_version()),
      server_->registry()->Quarantined().size(),
      static_cast<unsigned long long>(server_->watchdog_reaps()),
      static_cast<unsigned long long>(server_->watchdog_replacements()),
      static_cast<long long>(server_->overload()->peak_sampled_bytes()),
      static_cast<long long>(mem_budget_bytes_));

  WriteJson();
  if (!violations_.empty()) {
    std::fprintf(stderr, "chaos soak FAILED: %zu invariant violations\n",
                 violations_.size());
    return 1;
  }
  std::printf("chaos soak PASSED: all invariants held\n");
  return 0;
}

}  // namespace
}  // namespace bigcity

int main(int argc, char** argv) {
  bigcity::SoakOptions options;
  if (!bigcity::ParseArgs(argc, argv, &options)) {
    std::fprintf(
        stderr,
        "usage: chaos_soak [--seconds F] [--seed N] [--workers N]\n"
        "                  [--load-threads N] [--model-dir PATH] "
        "[--json PATH]\n");
    return 2;
  }
  if (options.model_dir.empty()) {
    options.model_dir = (std::filesystem::temp_directory_path() /
                         ("bigcity_chaos_soak_" +
                          std::to_string(options.seed)))
                            .string();
  }
  std::filesystem::remove_all(options.model_dir);
  std::filesystem::create_directories(options.model_dir);
  bigcity::ChaosSoak soak(options);
  return soak.Run();
}
