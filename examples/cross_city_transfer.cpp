// Cross-city transfer (the paper's Table VI scenario): pre-train BIGCity's
// backbone on a large city, then adapt it to a smaller city by fine-tuning
// only the tokenizer's last MLP and the task heads — far cheaper than full
// training, with modest accuracy loss.
//
//   ./build/examples/cross_city_transfer
#include <cstdio>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "obs/timer.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "train/transfer.h"

using namespace bigcity;  // NOLINT — example brevity.

int main() {
  // Source: the "large" city with plenty of data.
  data::CityDataset source_city(
      data::ScaleConfig(data::BeijingLikeConfig(), 0.25));
  core::BigCityConfig model_config;
  core::BigCityModel source_model(&source_city, model_config);

  train::TrainConfig source_train;
  source_train.stage1_epochs = 2;
  source_train.stage2_epochs = 3;
  source_train.max_stage1_sequences = 150;
  source_train.max_task_samples = 80;
  std::printf("Training source model on %s...\n",
              source_city.config().name.c_str());
  train::Trainer source_trainer(&source_model, source_train);
  if (auto status = source_trainer.RunAll(); !status.ok()) {
    std::printf("source training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Target: a smaller city with limited data.
  data::CityDataset target_city(
      data::ScaleConfig(data::XianLikeConfig(), 0.15));
  core::BigCityModel transferred(&target_city, model_config);
  util::Rng rng(1);
  transferred.backbone()->EnableLora(&rng);  // Match source architecture.

  obs::WallTimer transfer_watch;
  train::TransferBackbone(&source_model, &transferred);
  train::TrainConfig fine_tune;
  fine_tune.stage2_epochs = 3;
  fine_tune.max_task_samples = 60;
  train::FineTuneTransferred(&transferred, fine_tune);
  const double transfer_seconds = transfer_watch.ElapsedSeconds();

  // Reference: the same budget spent training from scratch on the target.
  core::BigCityModel scratch(&target_city, model_config);
  obs::WallTimer scratch_watch;
  train::TrainConfig scratch_train;
  scratch_train.stage1_epochs = 2;
  scratch_train.stage2_epochs = 3;
  scratch_train.max_stage1_sequences = 100;
  scratch_train.max_task_samples = 60;
  train::Trainer scratch_trainer(&scratch, scratch_train);
  if (auto status = scratch_trainer.RunAll(); !status.ok()) {
    std::printf("scratch training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const double scratch_seconds = scratch_watch.ElapsedSeconds();

  train::EvalConfig eval_config;
  eval_config.max_samples = 80;
  train::Evaluator transferred_eval(&transferred, eval_config);
  train::Evaluator scratch_eval(&scratch, eval_config);
  auto next_transferred = transferred_eval.EvaluateNextHop();
  auto next_scratch = scratch_eval.EvaluateNextHop();
  auto tte_transferred = transferred_eval.EvaluateTravelTime();
  auto tte_scratch = scratch_eval.EvaluateTravelTime();

  std::printf("\n%-28s %12s %12s\n", "", "transferred", "from-scratch");
  std::printf("%-28s %12.1f %12.1f\n", "adaptation seconds",
              transfer_seconds, scratch_seconds);
  std::printf("%-28s %12.3f %12.3f\n", "next-hop ACC",
              next_transferred.accuracy, next_scratch.accuracy);
  std::printf("%-28s %12.3f %12.3f\n", "next-hop MRR@5",
              next_transferred.mrr5, next_scratch.mrr5);
  std::printf("%-28s %12.2f %12.2f\n", "TTE MAE (min)",
              tte_transferred.mae, tte_scratch.mae);
  std::printf(
      "\nThe transferred model adapts with only the tokenizer MLP + heads "
      "trainable,\nreusing the source backbone (frozen base + LoRA).\n");
  return 0;
}
