// Traffic-operations scenario: forecast the next three hours of speeds on a
// busy arterial and fill a sensor outage (imputation) — both with the same
// BIGCity instance used for trajectory tasks.
//
//   ./build/examples/traffic_forecasting
#include <cstdio>
#include <string>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "data/traffic_aggregator.h"
#include "train/trainer.h"

using namespace bigcity;  // NOLINT — example brevity.

namespace {
/// Five-level ASCII bar for a speed in m/s.
char SpeedGlyph(double speed_mps) {
  const char* levels = ".:-=#";
  int bucket = static_cast<int>(speed_mps / 4.0);
  if (bucket < 0) bucket = 0;
  if (bucket > 4) bucket = 4;
  return levels[bucket];
}
}  // namespace

int main() {
  data::CityDataset dataset(data::ScaleConfig(data::XianLikeConfig(), 0.3));
  core::BigCityModel model(&dataset, core::BigCityConfig{});

  train::TrainConfig config;
  config.stage1_epochs = 2;
  config.stage2_epochs = 3;
  config.max_stage1_sequences = 150;
  config.max_task_samples = 80;
  train::Trainer trainer(&model, config);
  if (auto status = trainer.RunAll(); !status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // A busy arterial segment.
  int segment = 0;
  for (const auto& s : dataset.network().segments()) {
    if (s.type == roadnet::RoadType::kArterial) {
      segment = s.id;
      break;
    }
  }
  const int window = model.config().traffic_input_steps;
  const int horizon = model.config().traffic_horizon;
  const int start = dataset.num_slices() / 2;

  model.BeginStep();
  nn::Tensor forecast = model.PredictTraffic(segment, start, horizon);

  std::printf("Segment %d, forecasting slices %d..%d (30-min each)\n",
              segment, start + window, start + window + horizon - 1);
  std::printf("%-10s", "history:");
  for (int t = start; t < start + window; ++t) {
    std::printf("%c", SpeedGlyph(dataset.traffic().Get(t, segment, 0) *
                                 data::TrafficAggregator::kSpeedScale));
  }
  std::printf("\n%-10s%*s", "forecast:", window, "");
  for (int h = 0; h < horizon; ++h) {
    std::printf("%c", SpeedGlyph(forecast.at(h, 0) *
                                 data::TrafficAggregator::kSpeedScale));
  }
  std::printf("\n%-10s%*s", "actual:", window, "");
  for (int h = 0; h < horizon; ++h) {
    std::printf("%c",
                SpeedGlyph(dataset.traffic().Get(start + window + h, segment,
                                                 0) *
                           data::TrafficAggregator::kSpeedScale));
  }
  std::printf("   (. <4  : <8  - <12  = <16  # >=16 m/s)\n\n");

  double mae = 0;
  for (int h = 0; h < horizon; ++h) {
    const double predicted =
        forecast.at(h, 0) * data::TrafficAggregator::kSpeedScale;
    const double actual =
        dataset.traffic().Get(start + window + h, segment, 0) *
        data::TrafficAggregator::kSpeedScale;
    std::printf("  +%d slice: predicted %5.2f m/s, actual %5.2f m/s\n", h + 1,
                predicted, actual);
    mae += std::fabs(predicted - actual);
  }
  std::printf("forecast MAE: %.2f m/s\n\n", mae / horizon);

  // Sensor outage: slices 3, 4, 8 of a window missing.
  std::vector<int> masked = {3, 4, 8};
  model.BeginStep();
  nn::Tensor imputed = model.ImputeTraffic(segment, start, window, masked);
  std::printf("Imputation of a sensor outage (slices +3, +4, +8):\n");
  for (size_t m = 0; m < masked.size(); ++m) {
    const double predicted = imputed.at(static_cast<int64_t>(m), 0) *
                             data::TrafficAggregator::kSpeedScale;
    const double actual =
        dataset.traffic().Get(start + masked[m], segment, 0) *
        data::TrafficAggregator::kSpeedScale;
    std::printf("  slice +%d: imputed %5.2f m/s, actual %5.2f m/s\n",
                masked[m], predicted, actual);
  }
  return 0;
}
