// Quickstart: build a synthetic city, train BIGCity end-to-end (backbone
// pre-training -> masked reconstruction -> multi-task prompt tuning), and
// run two tasks on a held-out trip with ONE set of parameters.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "nn/ops.h"
#include "train/evaluator.h"
#include "train/trainer.h"

using namespace bigcity;  // NOLINT — example brevity.

int main() {
  // 1. A city: road network + trajectories + traffic states, generated
  //    procedurally (substitute for the paper's XA dataset).
  data::CityDatasetConfig city = data::ScaleConfig(data::XianLikeConfig(), 0.3);
  data::CityDataset dataset(city);
  std::printf("City '%s': %d road segments, %zu train trips, %d slices\n",
              city.name.c_str(), dataset.network().num_segments(),
              dataset.train().size(), dataset.num_slices());

  // 2. The model: unified ST tokenizer + LoRA-tuned causal backbone +
  //    general task heads.
  core::BigCityConfig model_config;
  core::BigCityModel model(&dataset, model_config);
  std::printf("BIGCity parameters: %lld\n",
              static_cast<long long>(model.NumParameters()));

  // 3. Two-stage training (Sec. VI of the paper).
  train::TrainConfig train_config;
  train_config.stage1_epochs = 2;
  train_config.stage2_epochs = 3;
  train_config.max_stage1_sequences = 150;
  train_config.max_task_samples = 80;
  train_config.verbose = true;
  // Crash-safe training: a snapshot is written after every epoch; if a
  // previous run was killed, resume it instead of starting over.
  train_config.checkpoint_dir = "quickstart_ckpt";
  train::Trainer trainer(&model, train_config);
  const std::string snapshot =
      train_config.checkpoint_dir + "/train_state.ckpt";
  if (std::filesystem::exists(snapshot)) {
    if (auto status = trainer.ResumeFrom(snapshot); !status.ok()) {
      std::printf("stale snapshot (%s) — delete %s to retrain\n",
                  status.ToString().c_str(), snapshot.c_str());
      return 1;
    }
    std::printf("resumed from %s (phase %d, epoch %d)\n", snapshot.c_str(),
                trainer.phase(), trainer.epoch());
  }
  if (auto status = trainer.RunAll(); !status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 4. One trip, several tasks, one model.
  const data::Trajectory* trip = nullptr;
  for (const auto& t : dataset.test()) {
    if (t.length() >= 8) {
      trip = &t;
      break;
    }
  }
  if (trip == nullptr) {
    std::printf("no long-enough test trip found\n");
    return 1;
  }

  model.BeginStep();
  data::Trajectory prefix = model.ClipTrajectory(*trip);
  const int true_next = prefix.points.back().segment;
  prefix.points.pop_back();
  nn::Tensor logits = model.NextHopLogits(prefix);
  auto top5 = nn::TopKRow(logits, 0, 5);
  std::printf("\nNext-hop prediction: truth=%d, top-5 = [", true_next);
  for (size_t i = 0; i < top5.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", top5[i]);
  }
  std::printf("]\n");

  model.BeginStep();
  nn::Tensor deltas = model.TravelTimeDeltas(model.ClipTrajectory(*trip));
  double eta_minutes = 0;  // MLP_t predicts per-hop minutes.
  for (int l = 0; l < deltas.shape()[0]; ++l) {
    eta_minutes += std::max(0.0f, deltas.at(l, 0));
  }
  std::printf("Travel time estimate: %.1f min (actual %.1f min)\n",
              eta_minutes, trip->duration_seconds() / 60.0);

  // 5. Aggregate quality on the test split.
  train::EvalConfig eval_config;
  eval_config.max_samples = 60;
  train::Evaluator evaluator(&model, eval_config);
  auto next = evaluator.EvaluateNextHop();
  std::printf("\nTest-split next-hop: ACC=%.3f MRR@5=%.3f NDCG@5=%.3f\n",
              next.accuracy, next.mrr5, next.ndcg5);
  return 0;
}
