// Ride-hailing analytics scenario: one BIGCity instance answers the three
// questions a dispatch platform asks about a trip — who is driving
// (trajectory-user linkage), where they go next (next-hop), and which past
// trips look like this one (most-similar search).
//
//   ./build/examples/trajectory_analysis
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "nn/ops.h"
#include "train/trainer.h"

using namespace bigcity;  // NOLINT — example brevity.

namespace {
double Cosine(const nn::Tensor& a, const nn::Tensor& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
    na += static_cast<double>(a.data()[i]) * a.data()[i];
    nb += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}
}  // namespace

int main() {
  data::CityDataset dataset(data::ScaleConfig(data::XianLikeConfig(), 0.3));
  core::BigCityModel model(&dataset, core::BigCityConfig{});

  train::TrainConfig config;
  config.stage1_epochs = 2;
  config.stage2_epochs = 3;
  config.max_stage1_sequences = 150;
  config.max_task_samples = 80;
  train::Trainer trainer(&model, config);
  if (auto status = trainer.RunAll(); !status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Pick a trip from a frequent user.
  const data::Trajectory* trip = nullptr;
  for (const auto& t : dataset.test()) {
    if (t.length() >= 10) {
      trip = &t;
      break;
    }
  }
  if (trip == nullptr) return 1;
  data::Trajectory clipped = model.ClipTrajectory(*trip);

  // Q1: who is driving?
  model.BeginStep();
  nn::Tensor user_logits = model.ClassifyLogits(clipped);
  auto user_top3 = nn::TopKRow(user_logits, 0, 3);
  std::printf("Trajectory of user %d -> predicted top-3 users: ",
              trip->user_id);
  for (size_t i = 0; i < user_top3.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", user_top3[i]);
  }
  std::printf("\n");

  // Q2: where next? (probability-ranked successors)
  model.BeginStep();
  data::Trajectory prefix = clipped;
  const int truth = prefix.points.back().segment;
  prefix.points.pop_back();
  nn::Tensor probs = nn::Softmax(model.NextHopLogits(prefix));
  auto next_top3 = nn::TopKRow(probs, 0, 3);
  std::printf("Next hop (truth %d):\n", truth);
  for (int candidate : next_top3) {
    std::printf("  segment %4d  p=%.3f%s\n", candidate,
                probs.at(0, candidate), candidate == truth ? "  <- truth" : "");
  }

  // Q3: which past trips are most similar?
  std::vector<const data::Trajectory*> pool;
  for (const auto& t : dataset.train()) {
    if (t.length() >= 8) pool.push_back(&t);
    if (pool.size() >= 80) break;
  }
  model.BeginStep();
  nn::Tensor query = model.Embed(clipped).Detached();
  std::vector<std::pair<double, const data::Trajectory*>> scored;
  for (const auto* candidate : pool) {
    model.BeginStep();
    nn::Tensor embedding =
        model.Embed(model.ClipTrajectory(*candidate)).Detached();
    scored.emplace_back(Cosine(query, embedding), candidate);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::printf("Top-3 most similar historical trips:\n");
  for (int k = 0; k < 3 && k < static_cast<int>(scored.size()); ++k) {
    std::printf("  sim=%.3f  user=%d  length=%d  shares_user=%s\n",
                scored[static_cast<size_t>(k)].first,
                scored[static_cast<size_t>(k)].second->user_id,
                scored[static_cast<size_t>(k)].second->length(),
                scored[static_cast<size_t>(k)].second->user_id ==
                        trip->user_id
                    ? "yes"
                    : "no");
  }
  return 0;
}
