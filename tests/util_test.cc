#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "util/fault_injection.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace bigcity::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_NE(s.ToString().find("NOT_FOUND"), std::string::npos);
}

TEST(StatusTest, ServingCodesRoundTrip) {
  const Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(deadline.ToString().find("DEADLINE_EXCEEDED"),
            std::string::npos);
  const Status unavailable = Status::Unavailable("try again");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_NE(unavailable.ToString().find("UNAVAILABLE"), std::string::npos);
  const Status exhausted = Status::ResourceExhausted("queue full");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(exhausted.ToString().find("RESOURCE_EXHAUSTED"),
            std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, CategoricalrespectsWeights) {
  Rng rng(3);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1);
  }
}

TEST(RngTest, CategoricalDistribution) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count1 += rng.Categorical(weights);
  double frac = static_cast<double>(count1) / n;
  EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(11);
  auto perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(20, 7);
  EXPECT_EQ(sample.size(), 7u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);  // sorted + distinct
  }
}

TEST(TablePrinterTest, RendersAlignedCells) {
  TablePrinter table({"Model", "MAE"});
  table.AddRow({"START", "1.833"});
  table.AddRow({"BIGCity", "1.723"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("BIGCity"), std::string::npos);
  EXPECT_NE(s.find("1.723"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsDecimals) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 3), "1.235");
  EXPECT_EQ(TablePrinter::Num(2.0, 1), "2.0");
}

TEST(IoTest, RoundTripsPrimitives) {
  std::stringstream stream;
  WriteU64(stream, 123456789ull);
  WriteI32(stream, -77);
  WriteFloatVector(stream, {1.5f, -2.5f, 3.25f});
  WriteString(stream, "backbone.block0.wq");

  uint64_t u = 0;
  int32_t i = 0;
  std::vector<float> v;
  std::string s;
  ASSERT_TRUE(ReadU64(stream, &u).ok());
  ASSERT_TRUE(ReadI32(stream, &i).ok());
  ASSERT_TRUE(ReadFloatVector(stream, &v).ok());
  ASSERT_TRUE(ReadString(stream, &s).ok());
  EXPECT_EQ(u, 123456789ull);
  EXPECT_EQ(i, -77);
  EXPECT_EQ(v, (std::vector<float>{1.5f, -2.5f, 3.25f}));
  EXPECT_EQ(s, "backbone.block0.wq");
}

TEST(IoTest, TruncatedStreamFails) {
  std::stringstream stream;
  WriteU64(stream, 10);  // Claims 10 floats but provides none.
  std::vector<float> v;
  EXPECT_FALSE(ReadFloatVector(stream, &v).ok());
}

TEST(FaultInjectionTest, UnarmedSiteNeverFires) {
  FaultInjection::DisarmAll();
  EXPECT_FALSE(FaultInjection::Fire("never.armed"));
  EXPECT_EQ(FaultInjection::Param("never.armed"), 0);
  EXPECT_EQ(FaultInjection::FireCount("never.armed"), 0);
}

TEST(FaultInjectionTest, SkipAndCountAreExact) {
  ScopedFault fault("util.test.site", /*skip=*/2, /*count=*/3, /*param=*/9);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (FaultInjection::Fire("util.test.site")) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fault.fire_count(), 3);
  EXPECT_EQ(FaultInjection::Param("util.test.site"), 9);
}

// The serve runtime fires sites from several worker threads at once; the
// skip/count budget must be consumed exactly once per firing regardless of
// interleaving.
TEST(FaultInjectionTest, ConcurrentFiringConsumesExactBudget) {
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 200;
  constexpr int kCount = 100;
  ScopedFault fault("util.test.concurrent", /*skip=*/50, kCount);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (FaultInjection::Fire("util.test.concurrent")) fired++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // 1600 attempts against skip=50 count=100: exactly 100 fire.
  EXPECT_EQ(fired.load(), kCount);
  EXPECT_EQ(fault.fire_count(), kCount);
}

TEST(FaultInjectionTest, DisarmAllResetsEverything) {
  FaultInjection::Arm("util.test.a", 0, 5);
  FaultInjection::Arm("util.test.b", 0, 5, 7);
  EXPECT_TRUE(FaultInjection::Fire("util.test.a"));
  FaultInjection::DisarmAll();
  EXPECT_FALSE(FaultInjection::Fire("util.test.a"));
  EXPECT_FALSE(FaultInjection::Fire("util.test.b"));
  EXPECT_EQ(FaultInjection::Param("util.test.b"), 0);
}

}  // namespace
}  // namespace bigcity::util
