#include <gtest/gtest.h>

#include <sstream>

#include "util/io.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace bigcity::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_NE(s.ToString().find("NOT_FOUND"), std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, CategoricalrespectsWeights) {
  Rng rng(3);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1);
  }
}

TEST(RngTest, CategoricalDistribution) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count1 += rng.Categorical(weights);
  double frac = static_cast<double>(count1) / n;
  EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(11);
  auto perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(20, 7);
  EXPECT_EQ(sample.size(), 7u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);  // sorted + distinct
  }
}

TEST(TablePrinterTest, RendersAlignedCells) {
  TablePrinter table({"Model", "MAE"});
  table.AddRow({"START", "1.833"});
  table.AddRow({"BIGCity", "1.723"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("BIGCity"), std::string::npos);
  EXPECT_NE(s.find("1.723"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsDecimals) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 3), "1.235");
  EXPECT_EQ(TablePrinter::Num(2.0, 1), "2.0");
}

TEST(IoTest, RoundTripsPrimitives) {
  std::stringstream stream;
  WriteU64(stream, 123456789ull);
  WriteI32(stream, -77);
  WriteFloatVector(stream, {1.5f, -2.5f, 3.25f});
  WriteString(stream, "backbone.block0.wq");

  uint64_t u = 0;
  int32_t i = 0;
  std::vector<float> v;
  std::string s;
  ASSERT_TRUE(ReadU64(stream, &u).ok());
  ASSERT_TRUE(ReadI32(stream, &i).ok());
  ASSERT_TRUE(ReadFloatVector(stream, &v).ok());
  ASSERT_TRUE(ReadString(stream, &s).ok());
  EXPECT_EQ(u, 123456789ull);
  EXPECT_EQ(i, -77);
  EXPECT_EQ(v, (std::vector<float>{1.5f, -2.5f, 3.25f}));
  EXPECT_EQ(s, "backbone.block0.wq");
}

TEST(IoTest, TruncatedStreamFails) {
  std::stringstream stream;
  WriteU64(stream, 10);  // Claims 10 floats but provides none.
  std::vector<float> v;
  EXPECT_FALSE(ReadFloatVector(stream, &v).ok());
}

}  // namespace
}  // namespace bigcity::util
