// Model-introspection tests (DESIGN.md §4.10): the autograd op profiler,
// tensor memory accounting, non-finite localization, and the new
// histogram-percentile / raw-record plumbing they report through.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "nn/introspect.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace bigcity {
namespace {

using nn::Tensor;

#if BIGCITY_OBS

/// Arms the profiler for one test and cleans up after, so profiling state
/// never leaks into the other tests in this binary.
class ScopedProfile {
 public:
  ScopedProfile() {
    obs::Profiler::Global().Reset();
    obs::SetProfilerEnabled(true);
  }
  ~ScopedProfile() {
    obs::SetProfilerEnabled(false);
    obs::Profiler::Global().Reset();
  }
};

const obs::OpStats* FindRow(const std::vector<obs::OpStats>& rows,
                            const std::string& op, bool backward) {
  for (const auto& row : rows) {
    if (row.op == op && row.backward == backward) return &row;
  }
  return nullptr;
}

TEST(ProfilerTest, RecordsForwardAndBackwardOpsWithFlops) {
  ScopedProfile profile;
  util::Rng rng(3);
  Tensor a = Tensor::Randn({8, 16}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({16, 8}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor loss = nn::Sum(nn::MatMul(a, b));
  loss.Backward();

  const auto rows = obs::Profiler::Global().Rows();
  const auto* fwd = FindRow(rows, "MatMul", /*backward=*/false);
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->calls, 1u);
  // 2*N*K*M multiply-adds.
  EXPECT_EQ(fwd->flops, 2u * 8 * 16 * 8);
  EXPECT_LE(fwd->self_us, fwd->total_us);

  const auto* bwd = FindRow(rows, "MatMul", /*backward=*/true);
  ASSERT_NE(bwd, nullptr);
  EXPECT_EQ(bwd->calls, 1u);
  // Backward computes dA and dB: twice the forward work.
  EXPECT_EQ(bwd->flops, 4u * 8 * 16 * 8);

  EXPECT_NE(FindRow(rows, "Sum", /*backward=*/false), nullptr);
  EXPECT_GT(obs::Profiler::Global().TotalSelfUs(), 0u);
}

TEST(ProfilerTest, ModuleScopesAttributeOpsAndRollUpByPrefix) {
  ScopedProfile profile;
  util::Rng rng(3);
  nn::Mlp mlp({4, 8, 2}, &rng);
  mlp.AssignModulePaths("encoder.mlp");
  Tensor x = Tensor::Randn({3, 4}, &rng, 1.0f, /*requires_grad=*/false);
  Tensor y = mlp.Forward(x);
  ASSERT_EQ(y.shape()[1], 2);

  bool saw_fc0 = false;
  for (const auto& row : obs::Profiler::Global().Rows()) {
    if (row.module == "encoder.mlp.fc0") saw_fc0 = true;
  }
  EXPECT_TRUE(saw_fc0) << "ops inside Linear::Forward must attribute to "
                          "the layer's assigned dotted path";

  // The rollup is inclusive over dotted prefixes: the parent paths carry
  // the children's time, and the total matches the op-level self sum.
  uint64_t encoder_total = 0, fc0_total = 0, all_roots = 0;
  const auto rollup = obs::Profiler::Global().ModuleRollup();
  for (const auto& m : rollup) {
    if (m.module == "encoder") encoder_total = m.total_us;
    if (m.module == "encoder.mlp.fc0") fc0_total = m.total_us;
    if (m.module.find('.') == std::string::npos) all_roots += m.total_us;
  }
  EXPECT_GE(encoder_total, fc0_total);
  EXPECT_EQ(all_roots, obs::Profiler::Global().TotalSelfUs())
      << "top-level rollup rows must partition the profiled time";
}

TEST(ProfilerTest, ToJsonCarriesOpsAndModules) {
  ScopedProfile profile;
  util::Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, &rng, 1.0f, /*requires_grad=*/false);
  (void)nn::Relu(a);
  const std::string json = obs::Profiler::Global().ToJson();
  EXPECT_NE(json.find("\"ops\""), std::string::npos);
  EXPECT_NE(json.find("\"modules\""), std::string::npos);
  EXPECT_NE(json.find("\"Relu\""), std::string::npos);
  EXPECT_NE(json.find("\"total_self_us\""), std::string::npos);
}

TEST(MemoryTrackerTest, TracksLivePeakAndPhaseChurn) {
  auto& tracker = obs::MemoryTracker::Global();
  const int64_t live_before = tracker.live_bytes();
  const int64_t forward_bytes_before =
      tracker.alloc_bytes(obs::MemPhase::kForward);
  {
    obs::ScopedMemPhase phase(obs::MemPhase::kForward);
    Tensor t = Tensor::Zeros({10, 100}, /*requires_grad=*/false);
    // 1000 floats of payload attributed to the forward phase.
    EXPECT_EQ(tracker.live_bytes() - live_before, 4000);
    EXPECT_EQ(tracker.alloc_bytes(obs::MemPhase::kForward) -
                  forward_bytes_before,
              4000);
    EXPECT_GE(tracker.peak_bytes(), tracker.live_bytes());
  }
  // Destruction returns the payload.
  EXPECT_EQ(tracker.live_bytes(), live_before);
}

TEST(MemoryTrackerTest, GradMaterializationIsTracked) {
  auto& tracker = obs::MemoryTracker::Global();
  const int64_t live_before = tracker.live_bytes();
  {
    util::Rng rng(3);
    Tensor a = Tensor::Randn({10, 100}, &rng, 1.0f, /*requires_grad=*/true);
    EXPECT_EQ(tracker.live_bytes() - live_before, 4000);
    nn::Sum(a).Backward();  // Materializes a.grad (+ the Sum scalar).
    EXPECT_GE(tracker.live_bytes() - live_before, 8000);
  }
  EXPECT_EQ(tracker.live_bytes(), live_before);
}

TEST(IntrospectTest, FindsMostUpstreamNonFiniteNode) {
  util::Rng rng(3);
  Tensor a = Tensor::FromData({1, 2}, {-1.0f, 2.0f});
  a.set_requires_grad(true);
  Tensor bad = nn::Log(a);  // log(-1) = NaN.
  Tensor loss = nn::Sum(nn::Mul(bad, bad));  // NaN propagates downstream.
  const auto site = nn::FindFirstNonFinite(loss);
  ASSERT_TRUE(site.found);
  // Every node from Log down holds the NaN; the minimum-seq rule picks the
  // Log node itself, whose tag the op profiler stamped at creation.
  EXPECT_EQ(site.op, "Log");
  EXPECT_FALSE(site.in_grad);
  EXPECT_EQ(site.shape, "[1, 2]");
}

TEST(IntrospectTest, CleanGraphReportsNothing) {
  Tensor a = Tensor::FromData({1, 2}, {1.0f, 2.0f});
  const auto site = nn::FindFirstNonFinite(nn::Sum(a));
  EXPECT_FALSE(site.found);
}

#endif  // BIGCITY_OBS

TEST(HistogramPercentileTest, InterpolatesWithinBuckets) {
  // 10 samples <= 1, 10 in (1, 3]: p50 sits at the first bucket edge and
  // p75 halfway into the second bucket.
  const std::vector<double> bounds = {1.0, 3.0};
  const std::vector<uint64_t> buckets = {10, 10, 0};
  EXPECT_NEAR(obs::HistogramPercentile(bounds, buckets, 0.50), 1.0, 1e-9);
  EXPECT_NEAR(obs::HistogramPercentile(bounds, buckets, 0.75), 2.0, 1e-9);
  EXPECT_NEAR(obs::HistogramPercentile(bounds, buckets, 1.0), 3.0, 1e-9);
  // Overflow samples clamp to the last finite bound.
  const std::vector<uint64_t> overflow = {0, 0, 5};
  EXPECT_NEAR(obs::HistogramPercentile(bounds, overflow, 0.99), 3.0, 1e-9);
  // Empty histogram / no bounds degrade to 0.
  EXPECT_EQ(obs::HistogramPercentile(bounds, {0, 0, 0}, 0.5), 0.0);
  EXPECT_EQ(obs::HistogramPercentile({}, {}, 0.5), 0.0);
}

TEST(HistogramPercentileTest, SnapshotJsonCarriesPercentiles) {
  auto* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "test.profiler_test.latency");
  for (int i = 1; i <= 100; ++i) histogram->Record(static_cast<double>(i));
  const std::string json =
      obs::MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(RunReportTest, RawAppendsVerbatimJson) {
  // json() is the object under construction; Write() closes the brace.
  obs::RunReport::Record record;
  record.Str("event", "health").Raw("layers", "[{\"module\":\"a\"}]");
  EXPECT_EQ(record.json(),
            "{\"event\":\"health\",\"layers\":[{\"module\":\"a\"}]");
}

}  // namespace
}  // namespace bigcity
