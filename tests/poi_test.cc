// Tests for the POI extension (the paper's future-work direction).
#include "roadnet/poi.h"

#include <gtest/gtest.h>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "nn/ops.h"
#include "roadnet/synthetic_city.h"

namespace bigcity::roadnet {
namespace {

RoadNetwork TestCity() {
  SyntheticCityConfig config;
  config.grid_width = 6;
  config.grid_height = 6;
  return GenerateSyntheticCity(config);
}

TEST(PoiLayerTest, GeneratesRequestedCount) {
  RoadNetwork network = TestCity();
  PoiLayer layer(&network, 120, 1);
  EXPECT_EQ(layer.num_pois(), 120);
}

TEST(PoiLayerTest, PoisInsideCityBounds) {
  RoadNetwork network = TestCity();
  float max_x = 0, max_y = 0;
  for (const auto& s : network.segments()) {
    max_x = std::max(max_x, s.mid_x);
    max_y = std::max(max_y, s.mid_y);
  }
  PoiLayer layer(&network, 200, 2);
  for (const auto& poi : layer.pois()) {
    EXPECT_GE(poi.x, 0.0f);
    EXPECT_LE(poi.x, max_x);
    EXPECT_GE(poi.y, 0.0f);
    EXPECT_LE(poi.y, max_y);
  }
}

TEST(PoiLayerTest, NearestSegmentIsConsistent) {
  RoadNetwork network = TestCity();
  PoiLayer layer(&network, 50, 3);
  for (const auto& poi : layer.pois()) {
    // The recorded segment must be at least as close as segment 0.
    const auto& near = network.segment(poi.nearest_segment);
    const auto& other = network.segment(0);
    const float d_near = (near.mid_x - poi.x) * (near.mid_x - poi.x) +
                         (near.mid_y - poi.y) * (near.mid_y - poi.y);
    const float d_other = (other.mid_x - poi.x) * (other.mid_x - poi.x) +
                          (other.mid_y - poi.y) * (other.mid_y - poi.y);
    EXPECT_LE(d_near, d_other + 1e-3f);
    // Reverse index agrees.
    const auto& attached = layer.PoisOfSegment(poi.nearest_segment);
    EXPECT_NE(std::find(attached.begin(), attached.end(), poi.id),
              attached.end());
  }
}

TEST(PoiLayerTest, FeatureMatrixShapeAndMass) {
  RoadNetwork network = TestCity();
  PoiLayer layer(&network, 150, 4);
  nn::Tensor features = layer.SegmentPoiFeatures();
  EXPECT_EQ(features.rows(), network.num_segments());
  EXPECT_EQ(features.cols(), kNumPoiCategories);
  float total = 0;
  for (float v : features.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 2.0f);
    total += v;
  }
  EXPECT_GT(total, 0.0f);
}

TEST(PoiLayerTest, DeterministicPerSeed) {
  RoadNetwork network = TestCity();
  PoiLayer a(&network, 60, 9);
  PoiLayer b(&network, 60, 9);
  for (int i = 0; i < a.num_pois(); ++i) {
    EXPECT_EQ(a.pois()[static_cast<size_t>(i)].nearest_segment,
              b.pois()[static_cast<size_t>(i)].nearest_segment);
  }
}

TEST(PoiIntegrationTest, ModelWithPoiFeaturesRuns) {
  auto config = data::ScaleConfig(data::XianLikeConfig(), 0.1);
  config.city.grid_width = 5;
  config.city.grid_height = 5;
  data::CityDataset dataset(config);
  core::BigCityConfig model_config;
  model_config.d_model = 32;
  model_config.num_heads = 2;
  model_config.num_layers = 1;
  model_config.spatial_dim = 16;
  model_config.gat_hidden = 16;
  model_config.use_poi_features = true;
  model_config.num_pois = 80;
  core::BigCityModel model(&dataset, model_config);
  model.BeginStep();
  nn::Tensor logits = model.NextHopLogits(dataset.train().front());
  EXPECT_EQ(logits.shape()[1], dataset.network().num_segments());
  // POI-augmented and plain models have different static-encoder widths.
  model_config.use_poi_features = false;
  core::BigCityModel plain(&dataset, model_config);
  EXPECT_NE(model.NumParameters(), plain.NumParameters());
}

}  // namespace
}  // namespace bigcity::roadnet
