#include <gtest/gtest.h>

#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "roadnet/synthetic_city.h"

namespace bigcity::roadnet {
namespace {

RoadNetwork TinyTriangle() {
  // Three intersections 0,1,2 with one-way ring 0->1->2->0.
  std::vector<RoadSegment> segs(3);
  for (int i = 0; i < 3; ++i) {
    segs[i].id = i;
    segs[i].from_intersection = i;
    segs[i].to_intersection = (i + 1) % 3;
    segs[i].length_m = 100.0f;
    segs[i].speed_limit_mps = 10.0f;
  }
  return RoadNetwork(std::move(segs));
}

TEST(RoadNetworkTest, AdjacencyFollowsIntersections) {
  RoadNetwork net = TinyTriangle();
  EXPECT_EQ(net.successors(0), (std::vector<int>{1}));
  EXPECT_EQ(net.successors(1), (std::vector<int>{2}));
  EXPECT_EQ(net.successors(2), (std::vector<int>{0}));
  EXPECT_EQ(net.predecessors(1), (std::vector<int>{0}));
}

TEST(RoadNetworkTest, DegreesComputed) {
  RoadNetwork net = TinyTriangle();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(net.segment(i).in_degree, 1);
    EXPECT_EQ(net.segment(i).out_degree, 1);
  }
}

TEST(RoadNetworkTest, UTurnsExcluded) {
  // Bidirectional street: 0<->1. The reverse twin must not be a successor.
  std::vector<RoadSegment> segs(2);
  segs[0].id = 0;
  segs[0].from_intersection = 0;
  segs[0].to_intersection = 1;
  segs[1].id = 1;
  segs[1].from_intersection = 1;
  segs[1].to_intersection = 0;
  RoadNetwork net(std::move(segs));
  EXPECT_TRUE(net.successors(0).empty());
  EXPECT_TRUE(net.successors(1).empty());
}

TEST(RoadNetworkTest, StaticFeatureMatrixShapeAndOneHot) {
  RoadNetwork net = TinyTriangle();
  nn::Tensor features = net.StaticFeatureMatrix();
  EXPECT_EQ(features.rows(), 3);
  EXPECT_EQ(features.cols(), RoadNetwork::StaticFeatureDim());
  // Exactly one road-type slot set per row.
  for (int i = 0; i < 3; ++i) {
    float onehot = 0;
    for (int t = 0; t < kNumRoadTypes; ++t) onehot += features.at(i, 7 + t);
    EXPECT_FLOAT_EQ(onehot, 1.0f);
  }
}

TEST(RoadNetworkTest, GraphEdgesIncludeSelfLoops) {
  RoadNetwork net = TinyTriangle();
  nn::GraphEdges g = net.ToGraphEdges();
  EXPECT_EQ(g.num_nodes, 3);
  int self_loops = 0;
  for (size_t e = 0; e < g.src.size(); ++e) {
    if (g.src[e] == g.dst[e]) ++self_loops;
  }
  EXPECT_EQ(self_loops, 3);
}

TEST(SyntheticCityTest, GeneratesConnectedCity) {
  SyntheticCityConfig config;
  config.grid_width = 6;
  config.grid_height = 6;
  RoadNetwork net = GenerateSyntheticCity(config);
  EXPECT_GT(net.num_segments(), 50);
  // The highway ring guarantees strong connectivity of the border; check
  // that a large majority of segments are mutually reachable.
  auto dist = HopDistances(net, 0);
  int reachable = 0;
  for (int d : dist) reachable += d >= 0 ? 1 : 0;
  EXPECT_GT(reachable, net.num_segments() * 9 / 10);
}

TEST(SyntheticCityTest, DeterministicForSeed) {
  SyntheticCityConfig config;
  RoadNetwork a = GenerateSyntheticCity(config);
  RoadNetwork b = GenerateSyntheticCity(config);
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (int i = 0; i < a.num_segments(); ++i) {
    EXPECT_EQ(a.segment(i).from_intersection, b.segment(i).from_intersection);
    EXPECT_FLOAT_EQ(a.segment(i).length_m, b.segment(i).length_m);
  }
}

TEST(SyntheticCityTest, RoadTypesPresent) {
  SyntheticCityConfig config;
  RoadNetwork net = GenerateSyntheticCity(config);
  int counts[kNumRoadTypes] = {0, 0, 0};
  for (const auto& s : net.segments()) ++counts[static_cast<int>(s.type)];
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
}

TEST(ShortestPathTest, TrianglePath) {
  RoadNetwork net = TinyTriangle();
  auto path = ShortestPath(net, 0, 2);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2}));
}

TEST(ShortestPathTest, SourceEqualsTarget) {
  RoadNetwork net = TinyTriangle();
  auto path = ShortestPath(net, 1, 1);
  EXPECT_EQ(path, (std::vector<int>{1}));
}

TEST(ShortestPathTest, UnreachableReturnsEmpty) {
  std::vector<RoadSegment> segs(2);
  segs[0].id = 0;
  segs[0].from_intersection = 0;
  segs[0].to_intersection = 1;
  segs[1].id = 1;
  segs[1].from_intersection = 2;
  segs[1].to_intersection = 3;
  RoadNetwork net(std::move(segs));
  EXPECT_TRUE(ShortestPath(net, 0, 1).empty());
}

TEST(ShortestPathTest, PathIsContiguousOnCity) {
  RoadNetwork net = GenerateSyntheticCity({});
  util::Rng rng(5);
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    int a = rng.UniformInt(0, net.num_segments() - 1);
    int b = rng.UniformInt(0, net.num_segments() - 1);
    auto path = ShortestPath(net, a, b);
    if (path.empty()) continue;
    ++found;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const auto& succ = net.successors(path[i]);
      EXPECT_NE(std::find(succ.begin(), succ.end(), path[i + 1]), succ.end());
    }
  }
  EXPECT_GT(found, 10);
}

TEST(ShortestPathTest, NoisyPathStillValidAndSometimesDifferent) {
  RoadNetwork net = GenerateSyntheticCity({});
  util::Rng rng(6);
  int different = 0;
  for (int trial = 0; trial < 10; ++trial) {
    int a = rng.UniformInt(0, net.num_segments() - 1);
    int b = rng.UniformInt(0, net.num_segments() - 1);
    auto base = ShortestPath(net, a, b);
    if (base.size() < 6) continue;
    auto noisy = NoisyShortestPath(net, a, b, 1.5, &rng);
    ASSERT_FALSE(noisy.empty());
    EXPECT_EQ(noisy.front(), a);
    EXPECT_EQ(noisy.back(), b);
    if (noisy != base) ++different;
  }
  EXPECT_GT(different, 0);
}

}  // namespace
}  // namespace bigcity::roadnet
