#include "nn/gat.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace bigcity::nn {
namespace {

GraphEdges LineGraph(int n) {
  // 0 -> 1 -> 2 -> ... with self loops.
  GraphEdges g;
  g.num_nodes = n;
  for (int i = 0; i + 1 < n; ++i) {
    g.src.push_back(i);
    g.dst.push_back(i + 1);
  }
  g.AddSelfLoops();
  return g;
}

TEST(GraphEdgesTest, AddSelfLoopsIsIdempotent) {
  GraphEdges g = LineGraph(4);
  size_t edges = g.src.size();
  g.AddSelfLoops();
  EXPECT_EQ(g.src.size(), edges);
}

TEST(GatLayerTest, OutputShape) {
  util::Rng rng(1);
  GatLayer gat(6, 8, 2, &rng);
  GraphEdges g = LineGraph(5);
  Tensor h = Tensor::Randn({5, 6}, &rng, 1.0f);
  Tensor out = gat.Forward(h, g);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{5, 8}));
}

TEST(GatLayerTest, IsolatedNodeOnlySeesItself) {
  util::Rng rng(2);
  GatLayer gat(4, 4, 1, &rng);
  GraphEdges g;
  g.num_nodes = 3;  // No edges between nodes.
  g.AddSelfLoops();
  Tensor h = Tensor::Randn({3, 4}, &rng, 1.0f);
  Tensor out1 = gat.Forward(h, g);
  // Change node 2's features: nodes 0 and 1 must be unaffected.
  Tensor h2 = Tensor::FromData({3, 4}, h.data());
  for (int j = 0; j < 4; ++j) h2.data()[2 * 4 + j] += 5.0f;
  Tensor out2 = gat.Forward(h2, g);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(out1.at(i, j), out2.at(i, j));
    }
  }
}

TEST(GatLayerTest, MessagePassingFollowsEdges) {
  util::Rng rng(3);
  GatLayer gat(4, 4, 1, &rng);
  GraphEdges g = LineGraph(3);  // 0->1->2 (+self loops).
  Tensor h = Tensor::Randn({3, 4}, &rng, 1.0f);
  Tensor out1 = gat.Forward(h, g);
  // Perturbing node 0 affects node 1 (its in-neighbor) but not node 0's
  // upstream: node 2 receives from 1 and itself only, so out[2] unchanged
  // only if edge 0->2 absent — it is, but 0 affects 1 which is input to
  // nothing else within a single layer, so out[2] must be unchanged.
  Tensor h2 = Tensor::FromData({3, 4}, h.data());
  for (int j = 0; j < 4; ++j) h2.data()[j] += 5.0f;
  Tensor out2 = gat.Forward(h2, g);
  float diff1 = 0, diff2 = 0;
  for (int j = 0; j < 4; ++j) {
    diff1 += std::fabs(out1.at(1, j) - out2.at(1, j));
    diff2 += std::fabs(out1.at(2, j) - out2.at(2, j));
  }
  EXPECT_GT(diff1, 1e-5f);
  EXPECT_NEAR(diff2, 0.0f, 1e-6f);
}

TEST(GatLayerTest, GradientsReachAttentionParams) {
  util::Rng rng(4);
  GatLayer gat(4, 4, 2, &rng);
  GraphEdges g = LineGraph(4);
  Tensor h = Tensor::Randn({4, 4}, &rng, 1.0f);
  Sum(Square(gat.Forward(h, g))).Backward();
  for (auto& p : gat.Parameters()) {
    float norm = 0;
    for (float v : p.grad()) norm += v * v;
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(GatEncoderTest, TwoHopReceptiveField) {
  util::Rng rng(5);
  GatEncoder enc(4, 8, 6, 2, &rng);
  GraphEdges g = LineGraph(4);  // 0->1->2->3.
  Tensor h = Tensor::Randn({4, 4}, &rng, 1.0f);
  Tensor out1 = enc.Forward(h, g);
  EXPECT_EQ(out1.shape(), (std::vector<int64_t>{4, 6}));
  // Two GAT layers: perturbing node 0 reaches node 2 but not node 3.
  Tensor h2 = Tensor::FromData({4, 4}, h.data());
  for (int j = 0; j < 4; ++j) h2.data()[j] += 5.0f;
  Tensor out2 = enc.Forward(h2, g);
  float diff2 = 0, diff3 = 0;
  for (int j = 0; j < 6; ++j) {
    diff2 += std::fabs(out1.at(2, j) - out2.at(2, j));
    diff3 += std::fabs(out1.at(3, j) - out2.at(3, j));
  }
  EXPECT_GT(diff2, 1e-6f);
  EXPECT_NEAR(diff3, 0.0f, 1e-6f);
}

}  // namespace
}  // namespace bigcity::nn
