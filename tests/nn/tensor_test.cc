#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/ops.h"
#include "util/rng.h"

namespace bigcity::nn {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FromDataAt) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, CopySharesStorage) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;
  b.data()[0] = 5.0f;
  EXPECT_EQ(a.at(0), 5.0f);
}

TEST(TensorTest, DetachedIsIndependentLeaf) {
  Tensor a = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  Tensor b = Scale(a, 2.0f);
  Tensor c = b.Detached();
  EXPECT_FALSE(c.requires_grad());
  c.data()[0] = 99.0f;
  EXPECT_EQ(b.at(0), 2.0f);  // Original untouched.
}

TEST(TensorTest, RandnRoughMoments) {
  util::Rng rng(1);
  Tensor t = Tensor::Randn({10000}, &rng, 2.0f);
  double sum = 0, sq = 0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  double mean = sum / t.numel();
  double var = sq / t.numel() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorTest, XavierWithinBound) {
  util::Rng rng(2);
  Tensor t = Tensor::Xavier(30, 50, &rng);
  const float bound = std::sqrt(6.0f / 80.0f);
  for (float v : t.data()) {
    EXPECT_LE(std::fabs(v), bound + 1e-6f);
  }
  EXPECT_TRUE(t.requires_grad());
}

TEST(AutogradTest, SimpleChain) {
  // loss = sum(3 * x) -> dloss/dx = 3.
  Tensor x = Tensor::FromData({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor loss = Sum(Scale(x, 3.0f));
  loss.Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 3.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::FromData({1}, {2}, /*requires_grad=*/true);
  Tensor l1 = Sum(Scale(x, 1.0f));
  l1.Backward();
  Tensor l2 = Sum(Scale(x, 1.0f));
  l2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(AutogradTest, DiamondDependency) {
  // y = x*x + x -> dy/dx = 2x + 1 = 5 at x=2.
  Tensor x = Tensor::FromData({1}, {2}, /*requires_grad=*/true);
  Tensor y = Add(Mul(x, x), x);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

TEST(AutogradTest, NoGradThroughFrozenLeaf) {
  Tensor x = Tensor::FromData({2}, {1, 1}, /*requires_grad=*/false);
  Tensor y = Scale(x, 2.0f);
  EXPECT_FALSE(y.impl()->needs_grad);
  // Graph is pruned: no parents stored.
  EXPECT_TRUE(y.impl()->parents.empty());
}

TEST(AutogradTest, MixedFrozenAndTrainable) {
  Tensor frozen = Tensor::FromData({2}, {1, 2}, false);
  Tensor train = Tensor::FromData({2}, {3, 4}, true);
  Tensor loss = Sum(Mul(frozen, train));
  loss.Backward();
  EXPECT_FLOAT_EQ(train.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(train.grad()[1], 2.0f);
  // Frozen leaf receives no gradient buffer writes.
  for (float g : frozen.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(AutogradTest, ZeroGradClears) {
  Tensor x = Tensor::FromData({1}, {1}, true);
  Sum(Scale(x, 4.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradTest, ReusedSubexpression) {
  // z = relu(x); loss = sum(z + z) -> grad 2 where x > 0.
  Tensor x = Tensor::FromData({2}, {1.0f, -1.0f}, true);
  Tensor z = Relu(x);
  Sum(Add(z, z)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.0f);
}

}  // namespace
}  // namespace bigcity::nn
