#include "nn/transformer.h"

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/ops.h"

namespace bigcity::nn {
namespace {

TEST(AttentionTest, OutputShape) {
  util::Rng rng(1);
  MultiHeadSelfAttention attn(16, 4, &rng, /*causal=*/false);
  Tensor x = Tensor::Randn({6, 16}, &rng, 1.0f);
  EXPECT_EQ(attn.Forward(x).shape(), (std::vector<int64_t>{6, 16}));
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  util::Rng rng(2);
  MultiHeadSelfAttention attn(8, 2, &rng, /*causal=*/true);
  Tensor x = Tensor::Randn({5, 8}, &rng, 1.0f);
  Tensor y1 = attn.Forward(x);
  // Changing a future position must not affect earlier outputs.
  Tensor x2 = Tensor::FromData({5, 8}, x.data());
  for (int j = 0; j < 8; ++j) x2.data()[4 * 8 + j] += 3.0f;
  Tensor y2 = attn.Forward(x2);
  for (int t = 0; t < 4; ++t) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(y1.at(t, j), y2.at(t, j)) << "t=" << t;
    }
  }
}

TEST(AttentionTest, NonCausalSeesFuture) {
  util::Rng rng(3);
  MultiHeadSelfAttention attn(8, 2, &rng, /*causal=*/false);
  Tensor x = Tensor::Randn({5, 8}, &rng, 1.0f);
  Tensor y1 = attn.Forward(x);
  Tensor x2 = Tensor::FromData({5, 8}, x.data());
  for (int j = 0; j < 8; ++j) x2.data()[4 * 8 + j] += 3.0f;
  Tensor y2 = attn.Forward(x2);
  float diff = 0;
  for (int j = 0; j < 8; ++j) diff += std::fabs(y1.at(0, j) - y2.at(0, j));
  EXPECT_GT(diff, 1e-5f);
}

TEST(TransformerBlockTest, ResidualPathPreservesShape) {
  util::Rng rng(4);
  TransformerBlock block(16, 4, &rng, /*causal=*/true);
  Tensor x = Tensor::Randn({7, 16}, &rng, 1.0f);
  EXPECT_EQ(block.Forward(x).shape(), (std::vector<int64_t>{7, 16}));
}

TEST(TransformerTest, StackForwardAndParamCount) {
  util::Rng rng(5);
  Transformer model(16, 4, 3, &rng, /*causal=*/true);
  EXPECT_EQ(model.num_layers(), 3);
  Tensor x = Tensor::Randn({4, 16}, &rng, 1.0f);
  EXPECT_EQ(model.Forward(x).shape(), (std::vector<int64_t>{4, 16}));
  EXPECT_GT(model.NumParameters(), 0);
}

TEST(TransformerTest, CausalityHoldsThroughStack) {
  util::Rng rng(6);
  Transformer model(8, 2, 2, &rng, /*causal=*/true);
  Tensor x = Tensor::Randn({6, 8}, &rng, 1.0f);
  Tensor y1 = model.Forward(x);
  Tensor x2 = Tensor::FromData({6, 8}, x.data());
  for (int j = 0; j < 8; ++j) x2.data()[5 * 8 + j] -= 2.0f;
  Tensor y2 = model.Forward(x2);
  for (int t = 0; t < 5; ++t) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1.at(t, j), y2.at(t, j), 1e-5f);
    }
  }
}

TEST(TransformerTest, LoraFreezeLeavesOnlyAdaptersTrainable) {
  util::Rng rng(7);
  Transformer model(16, 4, 2, &rng, /*causal=*/true);
  model.EnableLora(/*rank=*/4, /*alpha=*/8.0f, /*num_blocks=*/2, &rng);
  model.FreezeBase();
  int64_t trainable = 0;
  for (auto& p : model.TrainableParameters()) trainable += p.numel();
  // Per block: (3 attn + 2 ffn) LoRA pairs; attn: (16*4 + 4*16),
  // ffn_up: (16*4 + 4*64), ffn_down: (64*4 + 4*16).
  const int64_t per_block = 3 * (16 * 4 + 4 * 16) + (16 * 4 + 4 * 64) +
                            (64 * 4 + 4 * 16);
  EXPECT_EQ(trainable, 2 * per_block);
}

TEST(TransformerTest, PartialLoraRate) {
  util::Rng rng(8);
  Transformer model(8, 2, 4, &rng, /*causal=*/true);
  model.EnableLora(2, 4.0f, /*num_blocks=*/2, &rng);
  EXPECT_TRUE(model.block(0)->lora_enabled());
  EXPECT_TRUE(model.block(1)->lora_enabled());
  EXPECT_FALSE(model.block(2)->lora_enabled());
  EXPECT_FALSE(model.block(3)->lora_enabled());
}

TEST(TransformerTest, LoraTrainingChangesOutput) {
  util::Rng rng(9);
  Transformer model(8, 2, 1, &rng, /*causal=*/true);
  model.EnableLora(2, 4.0f, 1, &rng);
  model.FreezeBase();
  Tensor x = Tensor::Randn({3, 8}, &rng, 1.0f);
  Tensor before = model.Forward(x).Detached();
  // One crude SGD step on the LoRA params.
  Tensor loss = Sum(Square(model.Forward(x)));
  loss.Backward();
  for (auto& p : model.TrainableParameters()) {
    for (size_t i = 0; i < p.data().size(); ++i) {
      p.data()[i] -= 0.05f * p.grad()[i];
    }
  }
  Tensor after = model.Forward(x);
  float diff = 0;
  for (size_t i = 0; i < after.data().size(); ++i) {
    diff += std::fabs(after.data()[i] - before.data()[i]);
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST(LearnedQueryAttentionTest, FusionShapeAndGrad) {
  util::Rng rng(10);
  LearnedQueryAttention fusion(5, 8, &rng);
  Tensor h = Tensor::Randn({5, 8}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor out = fusion.Forward(h);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{5, 8}));
  Sum(Square(out)).Backward();
  float norm = 0;
  for (float g : h.grad()) norm += g * g;
  EXPECT_GT(norm, 0.0f);
}

}  // namespace
}  // namespace bigcity::nn
