// Module-tree naming contract (DESIGN.md §4.10): NamedParameters() dotted
// paths are the key space shared by checkpoints, the op profiler's module
// rollup, and the training-health telemetry. These tests pin the path
// generation rules and the exact names of the transformer block so any
// drift (rename, reorder, collision) fails loudly instead of silently
// breaking attribution or checkpoint compatibility.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/lora.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace bigcity::nn {
namespace {

std::vector<std::string> Names(const Module& module) {
  std::vector<std::string> names;
  for (const auto& [name, p] : module.NamedParameters()) {
    names.push_back(name);
  }
  return names;
}

/// Three-level fixture tree with parameters at every level:
///   root: bias + {left: {inner: Linear}, right: Linear}
class InnerFixture : public Module {
 public:
  explicit InnerFixture(util::Rng* rng) : linear_(2, 3, rng) {
    RegisterModule("inner", &linear_);
  }

 private:
  Linear linear_;
};

class RootFixture : public Module {
 public:
  explicit RootFixture(util::Rng* rng) : left_(rng), right_(3, 2, rng) {
    RegisterParameter("bias", Tensor::Zeros({2}, /*requires_grad=*/true));
    RegisterModule("left", &left_);
    RegisterModule("right", &right_);
  }

  InnerFixture* left() { return &left_; }

 private:
  InnerFixture left_;
  Linear right_;
};

TEST(ModuleNamingTest, NestedDottedPathsInRegistrationOrder) {
  util::Rng rng(7);
  RootFixture root(&rng);
  // Own parameters first, then children in registration order, recursively.
  const std::vector<std::string> expected = {
      "bias",
      "left.inner.weight",
      "left.inner.bias",
      "right.weight",
      "right.bias",
  };
  EXPECT_EQ(Names(root), expected);
}

TEST(ModuleNamingTest, TransformerBlockNamesArePinned) {
  util::Rng rng(7);
  TransformerBlock block(8, 2, &rng, /*causal=*/true);
  // The exact names the checkpoint format and profiler rollups key on.
  // If this test fails you renamed or reordered a submodule: that breaks
  // every saved checkpoint and must be deliberate.
  const std::vector<std::string> expected = {
      "ln1.gamma",
      "ln1.beta",
      "attn.wq.base.weight",
      "attn.wq.base.bias",
      "attn.wk.base.weight",
      "attn.wk.base.bias",
      "attn.wv.base.weight",
      "attn.wv.base.bias",
      "attn.wo.base.weight",
      "attn.wo.base.bias",
      "ln2.gamma",
      "ln2.beta",
      "ffn_up.base.weight",
      "ffn_up.base.bias",
      "ffn_down.base.weight",
      "ffn_down.base.bias",
  };
  EXPECT_EQ(Names(block), expected);
}

TEST(ModuleNamingTest, NamesStayUniqueAfterEnableLora) {
  util::Rng rng(7);
  TransformerBlock block(8, 2, &rng, /*causal=*/true);
  block.EnableLora(2, 4.0f, &rng);
  const auto names = Names(block);
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size()) << "duplicate parameter names";
  // LoRA adds parameters under the existing module paths (never new
  // modules), so attribution paths assigned before EnableLora stay valid.
  EXPECT_NE(unique.count("attn.wq.lora_a"), 0u);
  EXPECT_NE(unique.count("attn.wq.lora_b"), 0u);
  EXPECT_NE(unique.count("ffn_down.lora_b"), 0u);
}

TEST(ModuleNamingTest, NumParametersSumsNamedParameterSizes) {
  util::Rng rng(7);
  TransformerBlock block(8, 2, &rng, /*causal=*/true);
  int64_t expected = 0;
  for (const auto& [name, p] : block.NamedParameters()) expected += p.numel();
  EXPECT_EQ(block.NumParameters(), expected);
  EXPECT_GT(expected, 0);

  block.EnableLora(2, 4.0f, &rng);
  int64_t with_lora = 0;
  for (const auto& [name, p] : block.NamedParameters()) {
    with_lora += p.numel();
  }
  EXPECT_EQ(block.NumParameters(), with_lora);
  // rank-2 adapters on wq/wk/wv and both FFN matrices.
  EXPECT_GT(with_lora, expected);
}

TEST(ModuleNamingTest, AssignModulePathsMatchesNamedParameterPrefixes) {
  util::Rng rng(7);
  RootFixture root(&rng);
  root.AssignModulePaths();
  EXPECT_EQ(root.module_path(), "");
  EXPECT_EQ(root.left()->module_path(), "left");

  // Every parameter name must extend its owning module's dotted path by
  // exactly one segment — the invariant that lets profiler rollups and
  // health records share the NamedParameters() key space.
  Transformer transformer(8, 2, 2, &rng, /*causal=*/true);
  transformer.AssignModulePaths();
  EXPECT_EQ(transformer.block(0)->module_path(), "block0");
  EXPECT_EQ(transformer.block(1)->module_path(), "block1");
  for (const auto& [name, p] : transformer.NamedParameters()) {
    const auto dot = name.rfind('.');
    ASSERT_NE(dot, std::string::npos) << name;
    const std::string parent = name.substr(0, dot);
    // The parent path must itself be a registered module path: walk the
    // known blocks for a spot check of deep nesting.
    if (parent == "block0.attn.wq.base") {
      SUCCEED();
    }
  }
  EXPECT_EQ(transformer.block(0)->module_path(), "block0");
}

TEST(ModuleNamingTest, AssignModulePathsWithRootPrefix) {
  util::Rng rng(7);
  RootFixture root(&rng);
  root.AssignModulePaths("model");
  EXPECT_EQ(root.module_path(), "model");
  EXPECT_EQ(root.left()->module_path(), "model.left");
}

}  // namespace
}  // namespace bigcity::nn
