// Finite-difference gradient verification for every differentiable op.
#include "nn/grad_check.h"

#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace bigcity::nn {
namespace {

constexpr float kTolerance = 3e-2f;  // float32 finite differences are noisy.

struct GradCase {
  std::string name;
  // Builds a scalar loss from the test input x [3,4].
  std::function<Tensor(const Tensor&)> loss;
};

class OpGradTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(OpGradTest, MatchesFiniteDifferences) {
  util::Rng rng(123);
  Tensor x = Tensor::Randn({3, 4}, &rng, 0.5f, /*requires_grad=*/true);
  // Keep values away from kinks (relu/abs at 0) for stable numerics.
  for (auto& v : x.data()) {
    if (std::fabs(v) < 0.05f) v = v < 0 ? -0.1f : 0.1f;
  }
  const auto& param = GetParam();
  float err = MaxGradError(x, [&]() { return param.loss(x); });
  EXPECT_LT(err, kTolerance) << "op: " << param.name;
}

Tensor Weights34() {
  return Tensor::FromData({3, 4}, {0.3f, -0.2f, 0.5f, 0.1f, -0.4f, 0.2f,
                                   0.7f, -0.1f, 0.2f, 0.6f, -0.3f, 0.4f});
}

std::vector<GradCase> MakeCases() {
  return {
      {"add", [](const Tensor& x) { return Sum(Mul(Add(x, Weights34()), Weights34())); }},
      {"sub", [](const Tensor& x) { return Sum(Mul(Sub(Weights34(), x), Weights34())); }},
      {"mul", [](const Tensor& x) { return Sum(Mul(x, Weights34())); }},
      {"div", [](const Tensor& x) { return Sum(Div(Weights34(), AddConst(Square(x), 1.0f))); }},
      {"div_num", [](const Tensor& x) { return Sum(Div(x, AddConst(Square(Weights34()), 0.5f))); }},
      {"scale", [](const Tensor& x) { return Sum(Scale(x, -2.5f)); }},
      {"addconst", [](const Tensor& x) { return Sum(Square(AddConst(x, 3.0f))); }},
      {"exp", [](const Tensor& x) { return Sum(Exp(x)); }},
      {"log", [](const Tensor& x) { return Sum(Log(AddConst(Square(x), 1.0f))); }},
      {"sqrt", [](const Tensor& x) { return Sum(Sqrt(AddConst(Square(x), 1.0f))); }},
      {"square", [](const Tensor& x) { return Sum(Square(x)); }},
      {"abs", [](const Tensor& x) { return Sum(Abs(x)); }},
      {"relu", [](const Tensor& x) { return Sum(Mul(Relu(x), Weights34())); }},
      {"leakyrelu", [](const Tensor& x) { return Sum(Mul(LeakyRelu(x), Weights34())); }},
      {"gelu", [](const Tensor& x) { return Sum(Mul(Gelu(x), Weights34())); }},
      {"tanh", [](const Tensor& x) { return Sum(Mul(Tanh(x), Weights34())); }},
      {"sigmoid", [](const Tensor& x) { return Sum(Mul(Sigmoid(x), Weights34())); }},
      {"matmul_lhs", [](const Tensor& x) {
         Tensor w = Tensor::FromData({4, 2}, {0.1f, 0.2f, -0.3f, 0.4f,
                                              0.5f, -0.6f, 0.7f, 0.8f});
         return Sum(Square(MatMul(x, w)));
       }},
      {"matmul_rhs", [](const Tensor& x) {
         Tensor a = Tensor::FromData({2, 3}, {0.5f, -0.2f, 0.3f,
                                              0.1f, 0.4f, -0.6f});
         return Sum(Square(MatMul(a, x)));
       }},
      {"transpose", [](const Tensor& x) { return Sum(Square(Transpose(x))); }},
      {"mean", [](const Tensor& x) { return Mean(Square(x)); }},
      {"meanrows", [](const Tensor& x) { return Sum(Square(MeanRows(x))); }},
      {"sumcols", [](const Tensor& x) { return Sum(Square(SumCols(x))); }},
      {"softmax", [](const Tensor& x) { return Sum(Mul(Softmax(x), Weights34())); }},
      {"logsoftmax", [](const Tensor& x) { return Sum(Mul(LogSoftmax(x), Weights34())); }},
      {"layernorm_x", [](const Tensor& x) {
         Tensor gamma = Tensor::FromData({4}, {1.0f, 0.8f, 1.2f, 0.9f});
         Tensor beta = Tensor::FromData({4}, {0.1f, -0.1f, 0.0f, 0.2f});
         return Sum(Mul(LayerNorm(x, gamma, beta), Weights34()));
       }},
      {"concat0", [](const Tensor& x) {
         return Sum(Square(Concat({x, Weights34()}, 0)));
       }},
      {"concat1", [](const Tensor& x) {
         return Sum(Square(Concat({x, x}, 1)));
       }},
      {"slice_rows", [](const Tensor& x) { return Sum(Square(SliceRows(x, 1, 3))); }},
      {"slice_cols", [](const Tensor& x) { return Sum(Square(SliceCols(x, 1, 4))); }},
      {"rows", [](const Tensor& x) { return Sum(Square(Rows(x, {2, 0, 2}))); }},
      {"reshape", [](const Tensor& x) { return Sum(Square(Reshape(x, {4, 3}))); }},
      {"segment_softmax", [](const Tensor& x) {
         Tensor flat = Reshape(x, {12});
         Tensor w = Reshape(Weights34(), {12});
         return Sum(Mul(SegmentSoftmax(flat, {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}, 4), w));
       }},
      {"segment_weighted_sum_w", [](const Tensor& x) {
         Tensor flat = Reshape(SliceRows(x, 0, 1), {4});
         Tensor v = Tensor::FromData({4, 2}, {0.4f, -0.1f, 0.3f, 0.2f,
                                              -0.5f, 0.6f, 0.1f, 0.7f});
         return Sum(Square(SegmentWeightedSum(flat, v, {0, 1, 0, 1}, 2)));
       }},
      {"segment_weighted_sum_v", [](const Tensor& x) {
         Tensor w = Tensor::FromData({3}, {0.5f, -0.3f, 0.8f});
         return Sum(Square(SegmentWeightedSum(w, x, {0, 1, 0}, 2)));
       }},
      {"cross_entropy", [](const Tensor& x) {
         return CrossEntropy(x, {1, 3, 0});
       }},
      {"mse", [](const Tensor& x) { return Mse(x, Weights34()); }},
      {"l1", [](const Tensor& x) { return L1(x, Weights34()); }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

TEST(GradCheckTest, LayerNormGammaBetaGrads) {
  util::Rng rng(7);
  Tensor x = Tensor::Randn({3, 4}, &rng, 1.0f);
  Tensor gamma = Tensor::FromData({4}, {1.0f, 0.8f, 1.2f, 0.9f},
                                  /*requires_grad=*/true);
  Tensor beta = Tensor::FromData({4}, {0.0f, 0.1f, -0.1f, 0.2f},
                                 /*requires_grad=*/true);
  auto loss = [&]() {
    return Sum(Mul(LayerNorm(x, gamma, beta), Weights34()));
  };
  EXPECT_LT(MaxGradError(gamma, loss), kTolerance);
  EXPECT_LT(MaxGradError(beta, loss), kTolerance);
}

TEST(GradCheckTest, EmbeddingGradScattersIntoTable) {
  Tensor table = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6},
                                  /*requires_grad=*/true);
  Tensor out = Embedding(table, {1, 1, 2});
  Sum(out).Backward();
  // Row 1 gathered twice -> grad 2; row 2 once; row 0 never.
  EXPECT_EQ(table.grad(), (std::vector<float>{0, 0, 2, 2, 1, 1}));
}

}  // namespace
}  // namespace bigcity::nn
