#include "nn/layers.h"

#include <sstream>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/lora.h"
#include "nn/ops.h"

namespace bigcity::nn {
namespace {

TEST(LinearTest, OutputShape) {
  util::Rng rng(1);
  Linear fc(8, 3, &rng);
  Tensor x = Tensor::Randn({5, 8}, &rng, 1.0f);
  Tensor y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{5, 3}));
}

TEST(LinearTest, NoBiasVariant) {
  util::Rng rng(1);
  Linear fc(4, 2, &rng, /*bias=*/false);
  EXPECT_EQ(fc.Parameters().size(), 1u);
  Tensor zero = Tensor::Zeros({1, 4});
  Tensor y = fc.Forward(zero);
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
}

TEST(LinearTest, WeightGradientFlows) {
  util::Rng rng(2);
  Linear fc(3, 2, &rng);
  Tensor x = Tensor::Randn({4, 3}, &rng, 1.0f);
  Tensor loss = Sum(Square(fc.Forward(x)));
  loss.Backward();
  float grad_norm = 0;
  for (float g : fc.Parameters()[0].grad()) grad_norm += g * g;
  EXPECT_GT(grad_norm, 0.0f);
}

TEST(EmbeddingTableTest, LookupShapeAndValues) {
  util::Rng rng(3);
  EmbeddingTable emb(10, 4, &rng);
  Tensor out = emb.Forward({2, 2, 7});
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{3, 4}));
  for (int j = 0; j < 4; ++j) EXPECT_EQ(out.at(0, j), out.at(1, j));
}

TEST(LayerNormLayerTest, NormalizesRows) {
  LayerNormLayer ln(6);
  Tensor x = Tensor::FromData({1, 6}, {10, 20, 30, 40, 50, 60});
  Tensor y = ln.Forward(x);
  float mean = 0;
  for (int j = 0; j < 6; ++j) mean += y.at(0, j);
  EXPECT_NEAR(mean / 6, 0.0f, 1e-5f);
}

TEST(MlpTest, HiddenLayersAndShapes) {
  util::Rng rng(4);
  Mlp mlp({8, 16, 4}, &rng);
  EXPECT_EQ(mlp.out_features(), 4);
  Tensor y = mlp.Forward(Tensor::Randn({2, 8}, &rng, 1.0f));
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // 2 layers x (W, b).
}

TEST(GruTest, SequenceShapeAndStatefulness) {
  util::Rng rng(5);
  Gru gru(3, 6, &rng);
  Tensor x = Tensor::Randn({7, 3}, &rng, 1.0f);
  Tensor h = gru.Forward(x);
  EXPECT_EQ(h.shape(), (std::vector<int64_t>{7, 6}));
  // Last state should depend on early inputs: perturb x[0] and compare.
  Tensor x2 = Tensor::FromData({7, 3}, x.data());
  x2.data()[0] += 10.0f;
  Tensor h2 = gru.Forward(x2);
  float diff = 0;
  for (int j = 0; j < 6; ++j) diff += std::fabs(h2.at(6, j) - h.at(6, j));
  EXPECT_GT(diff, 1e-4f);
}

TEST(GruTest, GradientsReachParameters) {
  util::Rng rng(6);
  Gru gru(2, 4, &rng);
  Tensor x = Tensor::Randn({5, 2}, &rng, 1.0f);
  Sum(Square(gru.Forward(x))).Backward();
  for (auto& p : gru.Parameters()) {
    float norm = 0;
    for (float g : p.grad()) norm += g * g;
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(LoraLinearTest, DisabledMatchesBase) {
  util::Rng rng(7);
  LoraLinear lora(4, 3, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng, 1.0f);
  EXPECT_FALSE(lora.lora_enabled());
  Tensor y = lora.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 3}));
}

TEST(LoraLinearTest, FreshLoraIsExactNoOp) {
  util::Rng rng(8);
  LoraLinear lora(4, 3, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng, 1.0f);
  Tensor before = lora.Forward(x);
  lora.EnableLora(/*rank=*/2, /*alpha=*/4.0f, &rng);
  Tensor after = lora.Forward(x);
  // B initialized to zero -> adapted output identical at start.
  for (size_t i = 0; i < before.data().size(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
}

TEST(LoraLinearTest, FrozenBaseOnlyLoraTrains) {
  util::Rng rng(9);
  LoraLinear lora(4, 3, &rng);
  lora.EnableLora(2, 4.0f, &rng);
  lora.FreezeBase();
  int trainable = 0;
  for (auto& p : lora.Parameters()) {
    if (p.requires_grad()) ++trainable;
  }
  EXPECT_EQ(trainable, 2);  // lora_a + lora_b only.
  // Gradients flow into LoRA matrices through the frozen base path.
  Tensor x = Tensor::Randn({2, 4}, &rng, 1.0f);
  Sum(Square(lora.Forward(x))).Backward();
  bool lora_b_has_grad = false;
  for (auto& [name, p] : lora.NamedParameters()) {
    if (name == "lora_a") {
      // dLoss/dA is nonzero only after B is nonzero, so check B instead.
    } else if (name == "lora_b") {
      for (float g : p.grad()) lora_b_has_grad = lora_b_has_grad || g != 0.0f;
    }
  }
  EXPECT_TRUE(lora_b_has_grad);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  util::Rng rng(10);
  Mlp a({4, 8, 2}, &rng);
  Mlp b({4, 8, 2}, &rng);  // Different random init.
  std::stringstream stream;
  a.SaveState(stream);
  ASSERT_TRUE(b.LoadState(stream).ok());
  Tensor x = Tensor::Randn({3, 4}, &rng, 1.0f);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (size_t i = 0; i < ya.data().size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(ModuleTest, LoadRejectsMismatchedTree) {
  util::Rng rng(11);
  Mlp a({4, 8, 2}, &rng);
  Mlp b({4, 6, 2}, &rng);  // Different hidden width.
  std::stringstream stream;
  a.SaveState(stream);
  EXPECT_FALSE(b.LoadState(stream).ok());
}

TEST(ModuleTest, CopyStateFrom) {
  util::Rng rng(12);
  Mlp a({3, 5, 1}, &rng);
  Mlp b({3, 5, 1}, &rng);
  b.CopyStateFrom(a);
  Tensor x = Tensor::Randn({2, 3}, &rng, 1.0f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(ModuleTest, NamedParametersAreHierarchical) {
  util::Rng rng(13);
  Mlp mlp({2, 3, 1}, &rng);
  auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc0.weight");
  EXPECT_EQ(named[1].first, "fc0.bias");
}

TEST(ModuleTest, NumParametersCountsScalars) {
  util::Rng rng(14);
  Linear fc(10, 5, &rng);
  EXPECT_EQ(fc.NumParameters(), 10 * 5 + 5);
}

}  // namespace
}  // namespace bigcity::nn
