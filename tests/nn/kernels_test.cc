// Kernel-layer verification: bit-exact blocked-vs-naive equivalence across
// edge-tile shapes, thread-count-invariance, IEEE special-value propagation
// (no zero-skip), write-mode overwrite semantics, the ThreadPool's static
// partitioning contract, and gradients of every fused op under both
// backends.
#include "nn/kernels/kernels.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/kernels/fused.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bigcity::nn::kernels {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

using KernelFn = void (*)(const float*, const float*, float*, int64_t,
                          int64_t, int64_t, bool);

struct Shape {
  int64_t n, k, m;
};

/// Odd/edge-tile shapes: single element, primes straddling the MR=4 /
/// NR=16 / MC=64 tile boundaries, K=1, tall, wide, and K=300 > KC=256 so
/// the blocked path crosses a depth-panel boundary.
const std::vector<Shape> kShapes = {
    {1, 1, 1},  {3, 5, 7},    {4, 16, 64},  {1, 7, 1},   {13, 1, 17},
    {5, 300, 9}, {64, 64, 64}, {67, 129, 31}, {130, 17, 5}, {5, 17, 130},
};

std::vector<float> RandomVec(size_t size, util::Rng* rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return v;
}

/// Restores the process-global backend + thread count after each test so
/// ordering cannot leak state between tests.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_backend_ = backend();
    saved_threads_ = NumThreads();
  }
  void TearDown() override {
    SetBackend(saved_backend_);
    SetNumThreads(saved_threads_);
  }

 private:
  GemmBackend saved_backend_ = GemmBackend::kBlocked;
  int saved_threads_ = 1;
};

/// Runs naive and blocked on identical inputs and asserts bit equality.
/// Write mode starts from a sentinel-filled C (flushing stale contents is
/// part of the contract); accumulate mode starts from random C.
void ExpectBitEqual(KernelFn naive, KernelFn blocked, const Shape& s,
                    size_t b_size, size_t c_size, bool accumulate) {
  util::Rng rng(41 + s.n + 3 * s.k + 7 * s.m + (accumulate ? 1 : 0));
  const std::vector<float> a = RandomVec(static_cast<size_t>(s.n * s.k),
                                         &rng);
  const std::vector<float> b = RandomVec(b_size, &rng);
  std::vector<float> c0 = accumulate ? RandomVec(c_size, &rng)
                                     : std::vector<float>(c_size, 123.25f);
  std::vector<float> c1 = c0;
  naive(a.data(), b.data(), c0.data(), s.n, s.k, s.m, accumulate);
  blocked(a.data(), b.data(), c1.data(), s.n, s.k, s.m, accumulate);
  for (size_t i = 0; i < c_size; ++i) {
    ASSERT_EQ(c0[i], c1[i])
        << "element " << i << " shape {" << s.n << "," << s.k << "," << s.m
        << "} accumulate=" << accumulate;
    if (!accumulate) {
      ASSERT_NE(c1[i], 123.25f) << "stale output survived";
    }
  }
}

TEST_F(KernelsTest, BlockedMatchesNaiveAB) {
  for (const Shape& s : kShapes) {
    for (bool acc : {false, true}) {
      ExpectBitEqual(GemmABNaive, GemmABBlocked, s,
                     static_cast<size_t>(s.k * s.m),
                     static_cast<size_t>(s.n * s.m), acc);
    }
  }
}

TEST_F(KernelsTest, BlockedMatchesNaiveABt) {
  for (const Shape& s : kShapes) {
    for (bool acc : {false, true}) {
      ExpectBitEqual(GemmABtNaive, GemmABtBlocked, s,
                     static_cast<size_t>(s.m * s.k),
                     static_cast<size_t>(s.n * s.m), acc);
    }
  }
}

TEST_F(KernelsTest, BlockedMatchesNaiveAtB) {
  for (const Shape& s : kShapes) {
    for (bool acc : {false, true}) {
      ExpectBitEqual(GemmAtBNaive, GemmAtBBlocked, s,
                     static_cast<size_t>(s.n * s.m),
                     static_cast<size_t>(s.k * s.m), acc);
    }
  }
}

TEST_F(KernelsTest, BlockedIsThreadCountInvariant) {
  const Shape s{200, 70, 90};
  util::Rng rng(99);
  const std::vector<float> a = RandomVec(static_cast<size_t>(s.n * s.k),
                                         &rng);
  const std::vector<float> b = RandomVec(static_cast<size_t>(s.k * s.m),
                                         &rng);
  SetNumThreads(1);
  std::vector<float> c1(static_cast<size_t>(s.n * s.m));
  GemmABBlocked(a.data(), b.data(), c1.data(), s.n, s.k, s.m, false);
  for (int threads : {2, 4, 7}) {
    SetNumThreads(threads);
    std::vector<float> cn(static_cast<size_t>(s.n * s.m));
    GemmABBlocked(a.data(), b.data(), cn.data(), s.n, s.k, s.m, false);
    EXPECT_EQ(c1, cn) << threads << " threads diverged from 1 thread";
  }
}

/// 0 * Inf must be NaN in every backend and pattern: the old per-op loops
/// skipped zero multiplicands, silently masking Inf/NaN operands from the
/// trainer's non-finite guards.
TEST_F(KernelsTest, ZeroTimesInfPropagatesNan) {
  const KernelFn kernels[][2] = {{GemmABNaive, GemmABBlocked},
                                 {GemmABtNaive, GemmABtBlocked},
                                 {GemmAtBNaive, GemmAtBBlocked}};
  // 2x2 square case: every operand position participates in every pattern.
  const std::vector<float> a = {0.0f, 1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {kInf, 1.0f, 1.0f, 1.0f};
  for (const auto& pair : kernels) {
    for (const KernelFn fn : pair) {
      std::vector<float> c(4, 0.0f);
      fn(a.data(), b.data(), c.data(), 2, 2, 2, false);
      bool has_nan = false;
      for (float v : c) has_nan = has_nan || std::isnan(v);
      EXPECT_TRUE(has_nan) << "0*Inf was skipped";
    }
  }
}

TEST_F(KernelsTest, DispatchHonorsBackendSelection) {
  const Shape s{9, 11, 13};
  util::Rng rng(7);
  const std::vector<float> a = RandomVec(static_cast<size_t>(s.n * s.k),
                                         &rng);
  const std::vector<float> b = RandomVec(static_cast<size_t>(s.k * s.m),
                                         &rng);
  std::vector<float> c_naive(static_cast<size_t>(s.n * s.m));
  std::vector<float> c_blocked(c_naive.size());
  SetBackend(GemmBackend::kNaive);
  EXPECT_EQ(backend(), GemmBackend::kNaive);
  GemmAB(a.data(), b.data(), c_naive.data(), s.n, s.k, s.m, false);
  SetBackend(GemmBackend::kBlocked);
  EXPECT_EQ(backend(), GemmBackend::kBlocked);
  GemmAB(a.data(), b.data(), c_blocked.data(), s.n, s.k, s.m, false);
  EXPECT_EQ(c_naive, c_blocked);
}

// --- ThreadPool contract ----------------------------------------------------

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  auto collect = [](int num_threads) {
    util::ThreadPool pool(num_threads);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(0, 103, 10, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(lo, hi);
    });
    return chunks;
  };
  const auto single = collect(1);
  ASSERT_EQ(single.size(), 11u);  // ceil(103 / 10).
  for (const auto& [lo, hi] : single) {
    EXPECT_EQ(lo % 10, 0);
    EXPECT_EQ(hi, std::min<int64_t>(lo + 10, 103));
  }
  EXPECT_EQ(collect(3), single);
  EXPECT_EQ(collect(8), single);
}

TEST(ThreadPoolTest, EveryIterationRunsExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRangeAndReuse) {
  util::ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 10, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // The pool stays usable across many consecutive jobs.
  std::vector<int> hits(64, 0);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 64, 8, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
    });
  }
  for (int h : hits) ASSERT_EQ(h, 50);
}

// --- Fused ops: forward semantics -------------------------------------------

TEST_F(KernelsTest, BiasGeluMatchesUnfusedExactly) {
  util::Rng rng(5);
  Tensor x = Tensor::Randn({6, 9}, &rng);
  Tensor b_row = Tensor::Randn({9}, &rng);
  Tensor b_same = Tensor::Randn({6, 9}, &rng);
  EXPECT_EQ(BiasGelu(x, b_row).data(), Gelu(Add(x, b_row)).data());
  EXPECT_EQ(BiasGelu(x, b_same).data(), Gelu(Add(x, b_same)).data());
  EXPECT_EQ(BiasLeakyRelu(x, b_same, 0.2f).data(),
            LeakyRelu(Add(x, b_same), 0.2f).data());
}

TEST_F(KernelsTest, MatMulNTMatchesTransposedMatMulExactly) {
  util::Rng rng(6);
  Tensor a = Tensor::Randn({7, 12}, &rng);
  Tensor b = Tensor::Randn({5, 12}, &rng);
  // Both sum a[i,p]*b[j,p] in ascending p from a zero seed, so the fused
  // node is bit-identical to the transpose-then-matmul formulation.
  EXPECT_EQ(MatMulNT(a, b).data(), MatMul(a, Transpose(b)).data());
}

TEST_F(KernelsTest, AffineMatchesUnfusedClosely) {
  util::Rng rng(8);
  Tensor x = Tensor::Randn({5, 11}, &rng);
  Tensor w = Tensor::Randn({11, 6}, &rng);
  Tensor b = Tensor::Randn({6}, &rng);
  Tensor r = Tensor::Randn({5, 6}, &rng);
  const Tensor fused = Affine(x, w, b);
  const Tensor unfused = Add(MatMul(x, w), b);
  ASSERT_EQ(fused.data().size(), unfused.data().size());
  // The bias is the first summand in the fused node and the last in the
  // unfused chain, so agreement is near, not bitwise.
  for (size_t i = 0; i < fused.data().size(); ++i) {
    EXPECT_NEAR(fused.data()[i], unfused.data()[i], 1e-5f);
  }
  const Tensor fused_res = AffineResidual(x, w, b, r);
  const Tensor unfused_res = Add(Add(MatMul(x, w), b), r);
  for (size_t i = 0; i < fused_res.data().size(); ++i) {
    EXPECT_NEAR(fused_res.data()[i], unfused_res.data()[i], 1e-5f);
  }
  // Without bias, Affine is a plain write-mode matmul: exact.
  EXPECT_EQ(Affine(x, w, Tensor()).data(), MatMul(x, w).data());
}

TEST_F(KernelsTest, ScaledMaskedSoftmaxMatchesUnfusedClosely) {
  util::Rng rng(9);
  Tensor scores = Tensor::Randn({6, 6}, &rng);
  const float scale = 0.37f;
  Tensor fused = ScaledMaskedSoftmax(scores, scale, /*causal=*/true);
  // Reference: additive -1e9 mask (the pre-kernel-layer formulation).
  std::vector<float> mask_data(36, 0.0f);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = i + 1; j < 6; ++j) mask_data[i * 6 + j] = -1e9f;
  }
  Tensor mask = Tensor::FromData({6, 6}, std::move(mask_data));
  Tensor ref = Softmax(Add(Scale(scores, scale), mask));
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      const float got = fused.data()[i * 6 + j];
      if (j > i) {
        EXPECT_EQ(got, 0.0f) << "masked entry must be exactly zero";
      } else {
        EXPECT_NEAR(got, ref.data()[i * 6 + j], 1e-6f);
      }
    }
  }
  // Rows sum to 1.
  for (int64_t i = 0; i < 6; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 6; ++j) sum += fused.data()[i * 6 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  // Non-causal path against plain softmax of scaled scores.
  Tensor plain = ScaledMaskedSoftmax(scores, scale, /*causal=*/false);
  Tensor plain_ref = Softmax(Scale(scores, scale));
  for (size_t i = 0; i < plain.data().size(); ++i) {
    EXPECT_NEAR(plain.data()[i], plain_ref.data()[i], 1e-6f);
  }
}

// --- Fused ops: gradients under both backends -------------------------------

class FusedGradTest : public KernelsTest,
                      public ::testing::WithParamInterface<GemmBackend> {
 protected:
  void SetUp() override {
    KernelsTest::SetUp();
    SetBackend(GetParam());
  }
};

constexpr float kGradTolerance = 3e-2f;

TEST_P(FusedGradTest, Affine) {
  util::Rng rng(21);
  Tensor x = Tensor::Randn({3, 5}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn({5, 4}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor r = Tensor::Randn({3, 4}, &rng, 0.5f, /*requires_grad=*/true);
  auto loss = [&]() { return Sum(Square(Affine(x, w, b))); };
  EXPECT_LT(MaxGradError(x, loss), kGradTolerance);
  EXPECT_LT(MaxGradError(w, loss), kGradTolerance);
  EXPECT_LT(MaxGradError(b, loss), kGradTolerance);
  auto loss_res = [&]() {
    return Sum(Square(AffineResidual(x, w, b, r)));
  };
  EXPECT_LT(MaxGradError(x, loss_res), kGradTolerance);
  EXPECT_LT(MaxGradError(r, loss_res), kGradTolerance);
}

TEST_P(FusedGradTest, BiasActivations) {
  util::Rng rng(22);
  Tensor x = Tensor::Randn({3, 4}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor b_row = Tensor::Randn({4}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor b_same = Tensor::Randn({3, 4}, &rng, 0.5f, /*requires_grad=*/true);
  // Keep pre-activations away from the LeakyReLU kink at 0.
  auto nudge = [](Tensor* t) {
    for (auto& v : t->data()) {
      if (std::fabs(v) < 0.05f) v = v < 0 ? -0.1f : 0.1f;
    }
  };
  nudge(&x);
  auto gelu_row = [&]() { return Sum(Square(BiasGelu(x, b_row))); };
  EXPECT_LT(MaxGradError(x, gelu_row), kGradTolerance);
  EXPECT_LT(MaxGradError(b_row, gelu_row), kGradTolerance);
  auto gelu_same = [&]() { return Sum(Square(BiasGelu(x, b_same))); };
  EXPECT_LT(MaxGradError(b_same, gelu_same), kGradTolerance);
  auto leaky = [&]() { return Sum(Square(BiasLeakyRelu(x, b_row, 0.2f))); };
  EXPECT_LT(MaxGradError(x, leaky), kGradTolerance);
  EXPECT_LT(MaxGradError(b_row, leaky), kGradTolerance);
}

TEST_P(FusedGradTest, ScaledMaskedSoftmax) {
  util::Rng rng(23);
  Tensor scores = Tensor::Randn({4, 4}, &rng, 0.8f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn({4, 4}, &rng);
  for (bool causal : {false, true}) {
    auto loss = [&]() {
      return Sum(Mul(ScaledMaskedSoftmax(scores, 0.7f, causal), w));
    };
    EXPECT_LT(MaxGradError(scores, loss), kGradTolerance)
        << "causal=" << causal;
  }
}

TEST_P(FusedGradTest, MatMulNT) {
  util::Rng rng(24);
  Tensor a = Tensor::Randn({3, 6}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4, 6}, &rng, 0.5f, /*requires_grad=*/true);
  auto loss = [&]() { return Sum(Square(MatMulNT(a, b))); };
  EXPECT_LT(MaxGradError(a, loss), kGradTolerance);
  EXPECT_LT(MaxGradError(b, loss), kGradTolerance);
}

TEST_P(FusedGradTest, MatMulThroughKernels) {
  util::Rng rng(25);
  Tensor a = Tensor::Randn({4, 7}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({7, 3}, &rng, 0.5f, /*requires_grad=*/true);
  auto loss = [&]() { return Sum(Square(MatMul(a, b))); };
  EXPECT_LT(MaxGradError(a, loss), kGradTolerance);
  EXPECT_LT(MaxGradError(b, loss), kGradTolerance);
}

INSTANTIATE_TEST_SUITE_P(Backends, FusedGradTest,
                         ::testing::Values(GemmBackend::kBlocked,
                                           GemmBackend::kNaive),
                         [](const auto& info) {
                           return info.param == GemmBackend::kBlocked
                                      ? "Blocked"
                                      : "Naive";
                         });

}  // namespace
}  // namespace bigcity::nn::kernels
