// Checkpointing round-trips across composite modules (transformer + LoRA),
// mirroring what the bench cache and cross-city transfer rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/lora.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "nn/transformer.h"

namespace bigcity::nn {
namespace {

TEST(SerializeTest, TransformerRoundTripPreservesOutputs) {
  util::Rng rng(1);
  Transformer a(16, 2, 2, &rng, true);
  Transformer b(16, 2, 2, &rng, true);
  std::stringstream stream;
  a.SaveState(stream);
  ASSERT_TRUE(b.LoadState(stream).ok());
  Tensor x = Tensor::Randn({5, 16}, &rng, 1.0f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(SerializeTest, LoraStateIncludedAfterEnable) {
  util::Rng rng(2);
  Transformer a(8, 2, 1, &rng, true);
  Transformer b(8, 2, 1, &rng, true);
  a.EnableLora(4, 8.0f, 1, &rng);
  b.EnableLora(4, 8.0f, 1, &rng);
  // Perturb a's LoRA weights, then round trip into b.
  for (auto& [name, p] : a.NamedParameters()) {
    if (name.find("lora") != std::string::npos) {
      for (auto& v : p.data()) v += 0.1f;
    }
  }
  std::stringstream stream;
  a.SaveState(stream);
  ASSERT_TRUE(b.LoadState(stream).ok());
  Tensor x = Tensor::Randn({3, 8}, &rng, 1.0f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(SerializeTest, MismatchedLoraTreeRejected) {
  util::Rng rng(3);
  Transformer with_lora(8, 2, 1, &rng, true);
  with_lora.EnableLora(4, 8.0f, 1, &rng);
  Transformer without_lora(8, 2, 1, &rng, true);
  std::stringstream stream;
  with_lora.SaveState(stream);
  EXPECT_FALSE(without_lora.LoadState(stream).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  util::Rng rng(4);
  TransformerBlock a(8, 2, &rng, false);
  TransformerBlock b(8, 2, &rng, false);
  const std::string path =
      (std::filesystem::temp_directory_path() / "bigcity_serialize_test.bin")
          .string();
  ASSERT_TRUE(a.SaveStateToFile(path).ok());
  ASSERT_TRUE(b.LoadStateFromFile(path).ok());
  std::filesystem::remove(path);
  Tensor x = Tensor::Randn({4, 8}, &rng, 1.0f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(SerializeTest, MissingFileIsError) {
  util::Rng rng(5);
  TransformerBlock block(8, 2, &rng, false);
  EXPECT_FALSE(
      block.LoadStateFromFile("/nonexistent/dir/model.bin").ok());
}

TEST(SerializeTest, TrainingAfterLoadContinues) {
  // A loaded model must be trainable (optimizer state is fresh).
  util::Rng rng(6);
  LoraLinear a(4, 4, &rng);
  a.EnableLora(2, 4.0f, &rng);
  LoraLinear b(4, 4, &rng);
  b.EnableLora(2, 4.0f, &rng);
  std::stringstream stream;
  a.SaveState(stream);
  ASSERT_TRUE(b.LoadState(stream).ok());
  b.FreezeBase();
  Adam opt(b.TrainableParameters(), 0.05f);
  Tensor x = Tensor::Randn({4, 4}, &rng, 1.0f);
  float first = 0;
  for (int step = 0; step < 20; ++step) {
    opt.ZeroGrad();
    Tensor loss = Mse(b.Forward(x), Tensor::Ones({4, 4}));
    if (step == 0) first = loss.item();
    loss.Backward();
    opt.Step();
  }
  Tensor final_loss = Mse(b.Forward(x), Tensor::Ones({4, 4}));
  EXPECT_LT(final_loss.item(), first);
}

}  // namespace
}  // namespace bigcity::nn
