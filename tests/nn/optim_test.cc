#include "nn/optim.h"

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/ops.h"

namespace bigcity::nn {
namespace {

TEST(SgdTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromData({1}, {5.0f}, /*requires_grad=*/true);
  Sgd opt({x}, /*lr=*/0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Tensor loss = Square(x);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-3f);
}

TEST(SgdTest, MomentumAccelerates) {
  Tensor a = Tensor::FromData({1}, {5.0f}, true);
  Tensor b = Tensor::FromData({1}, {5.0f}, true);
  Sgd plain({a}, 0.01f);
  Sgd momentum({b}, 0.01f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.ZeroGrad();
    Square(a).Backward();
    plain.Step();
    momentum.ZeroGrad();
    Square(b).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::fabs(b.item()), std::fabs(a.item()));
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromData({2}, {3.0f, -4.0f}, true);
  Adam opt({x}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Sum(Square(x)).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 1e-2f);
  EXPECT_NEAR(x.at(1), 0.0f, 1e-2f);
}

TEST(AdamTest, SkipsFrozenParameters) {
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor frozen = Tensor::FromData({1}, {7.0f}, false);
  Adam opt({x, frozen}, 0.1f);
  opt.ZeroGrad();
  Sum(Square(x)).Backward();
  opt.Step();
  EXPECT_FLOAT_EQ(frozen.item(), 7.0f);
  EXPECT_NE(x.item(), 3.0f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor x = Tensor::FromData({1}, {1.0f}, true);
  Adam opt({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts.
  opt.ZeroGrad();
  opt.Step();
  EXPECT_LT(x.item(), 1.0f);
}

TEST(OptimizerTest, ClipGradNorm) {
  Tensor x = Tensor::FromData({2}, {0.0f, 0.0f}, true);
  x.grad()[0] = 3.0f;
  x.grad()[1] = 4.0f;  // norm 5.
  Sgd opt({x}, 0.1f);
  float norm = opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipNoOpBelowThreshold) {
  Tensor x = Tensor::FromData({1}, {0.0f}, true);
  x.grad()[0] = 0.5f;
  Sgd opt({x}, 0.1f);
  opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.5f);
}

TEST(AdamTest, TrainsLinearRegressionToFit) {
  // y = 2x + 1 learned by a 1-layer Linear.
  util::Rng rng(1);
  Linear fc(1, 1, &rng);
  Adam opt(fc.Parameters(), 0.05f);
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Tensor x = Tensor::FromData({4, 1}, {-1, 0, 1, 2});
    Tensor target = Tensor::FromData({4, 1}, {-1, 1, 3, 5});
    Tensor loss = Mse(fc.Forward(x), target);
    loss.Backward();
    opt.Step();
  }
  Tensor test = Tensor::FromData({1, 1}, {10.0f});
  EXPECT_NEAR(fc.Forward(test).item(), 21.0f, 0.1f);
}

}  // namespace
}  // namespace bigcity::nn
