#include "nn/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace bigcity::nn {
namespace {

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.data(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromData({3}, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_EQ(c.data(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsTest, AddScalarBroadcast) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor s = Tensor::Scalar(5.0f);
  EXPECT_EQ(Add(a, s).data(), (std::vector<float>{6, 7}));
}

TEST(OpsTest, MulDivSubNeg) {
  Tensor a = Tensor::FromData({2}, {6, 8});
  Tensor b = Tensor::FromData({2}, {2, 4});
  EXPECT_EQ(Mul(a, b).data(), (std::vector<float>{12, 32}));
  EXPECT_EQ(Div(a, b).data(), (std::vector<float>{3, 2}));
  EXPECT_EQ(Sub(a, b).data(), (std::vector<float>{4, 4}));
  EXPECT_EQ(Neg(a).data(), (std::vector<float>{-6, -8}));
}

TEST(OpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.data(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsTest, TransposeRoundTrip) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(Transpose(t).data(), a.data());
}

TEST(OpsTest, SumMean) {
  Tensor a = Tensor::FromData({4}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
}

TEST(OpsTest, MeanRows) {
  Tensor a = Tensor::FromData({2, 2}, {1, 3, 5, 7});
  Tensor m = MeanRows(a);
  EXPECT_EQ(m.shape(), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(m.data(), (std::vector<float>{3, 5}));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = Softmax(a);
  for (int r = 0; r < 2; ++r) {
    float sum = s.at(r, 0) + s.at(r, 1) + s.at(r, 2);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(s.at(r, 2), s.at(r, 1));
    EXPECT_GT(s.at(r, 1), s.at(r, 0));
  }
}

TEST(OpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor a = Tensor::FromData({1, 2}, {1000.0f, 1001.0f});
  Tensor s = Softmax(a);
  EXPECT_FALSE(std::isnan(s.at(0, 0)));
  EXPECT_NEAR(s.at(0, 0) + s.at(0, 1), 1.0f, 1e-6f);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromData({1, 3}, {0.3f, -1.2f, 2.0f});
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(ls.at(0, j), std::log(s.at(0, j)), 1e-5f);
  }
}

TEST(OpsTest, ActivationsKnownValues) {
  Tensor a = Tensor::FromData({3}, {-1, 0, 2});
  EXPECT_EQ(Relu(a).data(), (std::vector<float>{0, 0, 2}));
  auto lr = LeakyRelu(a, 0.1f).data();
  EXPECT_FLOAT_EQ(lr[0], -0.1f);
  EXPECT_FLOAT_EQ(lr[2], 2.0f);
  EXPECT_NEAR(Sigmoid(Tensor::Scalar(0.0f)).item(), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(Tensor::Scalar(0.0f)).item(), 0.0f, 1e-6f);
  // GELU(0) = 0; GELU is approximately identity for large x.
  EXPECT_NEAR(Gelu(Tensor::Scalar(0.0f)).item(), 0.0f, 1e-6f);
  EXPECT_NEAR(Gelu(Tensor::Scalar(10.0f)).item(), 10.0f, 1e-3f);
}

TEST(OpsTest, LayerNormZeroMeanUnitVar) {
  Tensor x = Tensor::FromData({1, 4}, {1, 2, 3, 4});
  Tensor gamma = Tensor::Ones({4});
  Tensor beta = Tensor::Zeros({4});
  Tensor y = LayerNorm(x, gamma, beta);
  float mean = 0, var = 0;
  for (int j = 0; j < 4; ++j) mean += y.at(0, j);
  mean /= 4;
  for (int j = 0; j < 4; ++j) var += (y.at(0, j) - mean) * (y.at(0, j) - mean);
  var /= 4;
  EXPECT_NEAR(mean, 0.0f, 1e-5f);
  EXPECT_NEAR(var, 1.0f, 1e-3f);
}

TEST(OpsTest, ConcatAxis0) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(c.data(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(OpsTest, ConcatAxis1) {
  Tensor a = Tensor::FromData({2, 1}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(c.data(), (std::vector<float>{1, 3, 4, 2, 5, 6}));
}

TEST(OpsTest, SliceRowsCols) {
  Tensor a = Tensor::FromData({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(SliceRows(a, 1, 3).data(), (std::vector<float>{4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(SliceCols(a, 0, 2).data(), (std::vector<float>{1, 2, 4, 5, 7, 8}));
}

TEST(OpsTest, RowsGather) {
  Tensor a = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = Rows(a, {2, 0, 2});
  EXPECT_EQ(g.data(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(r.data(), a.data());
}

TEST(OpsTest, SegmentSoftmaxPerSegment) {
  Tensor scores = Tensor::FromData({4}, {1, 1, 2, 2});
  // Segments: {0,0}, {1,1} -> each pair uniform within its segment.
  Tensor s = SegmentSoftmax(scores, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(s.at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at(1), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at(2), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at(3), 0.5f, 1e-6f);
}

TEST(OpsTest, SegmentWeightedSum) {
  Tensor w = Tensor::FromData({3}, {1, 2, 3});
  Tensor v = Tensor::FromData({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor out = SegmentWeightedSum(w, v, {0, 0, 1}, 2);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(out.data(), (std::vector<float>{1, 2, 3, 3}));
}

TEST(OpsTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = CrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(OpsTest, CrossEntropyPerfectPrediction) {
  Tensor logits = Tensor::FromData({1, 3}, {100, 0, 0});
  EXPECT_NEAR(CrossEntropy(logits, {0}).item(), 0.0f, 1e-4f);
}

TEST(OpsTest, MseL1) {
  Tensor a = Tensor::FromData({2}, {1, 3});
  Tensor b = Tensor::FromData({2}, {2, 1});
  EXPECT_FLOAT_EQ(Mse(a, b).item(), (1.0f + 4.0f) / 2);
  EXPECT_FLOAT_EQ(L1(a, b).item(), (1.0f + 2.0f) / 2);
}

TEST(OpsTest, DropoutInferenceIsIdentity) {
  util::Rng rng(1);
  Tensor a = Tensor::FromData({4}, {1, 2, 3, 4});
  Tensor d = Dropout(a, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(d.data(), a.data());
}

TEST(OpsTest, DropoutTrainingMasksAndScales) {
  util::Rng rng(1);
  Tensor a = Tensor::Ones({10000});
  Tensor d = Dropout(a, 0.4f, &rng, /*training=*/true);
  int zeros = 0;
  for (float v : d.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros / 10000.0, 0.4, 0.03);
}

TEST(OpsTest, ArgmaxAndTopK) {
  Tensor a = Tensor::FromData({2, 4}, {1, 5, 3, 2, 9, 0, 8, 7});
  EXPECT_EQ(ArgmaxRows(a), (std::vector<int>{1, 0}));
  EXPECT_EQ(TopKRow(a, 1, 3), (std::vector<int>{0, 2, 3}));
}

}  // namespace
}  // namespace bigcity::nn
