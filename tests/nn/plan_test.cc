// Execution-plan tests (DESIGN.md §4.13): plan replay must be bit-identical
// to eager execution, arenas must recycle rather than grow in steady state,
// cache misses must fall back to eager heap execution transparently, and
// stale tensors crossing a step boundary must hit the poison valve (a
// bounded leak), never invalid memory.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "nn/arena.h"
#include "nn/kernels/kernels.h"
#include "nn/ops.h"
#include "nn/plan.h"
#include "nn/tensor.h"
#include "obs/obs.h"
#include "train/trainer.h"

namespace bigcity::nn {
namespace {

data::CityDatasetConfig TinyCity(const char* name, uint64_t seed) {
  auto config = data::ScaleConfig(data::XianLikeConfig(), 0.15);
  config.name = name;
  config.city.grid_width = 5;
  config.city.grid_height = 5;
  config.city.seed = seed;
  config.generator.seed = seed + 1;
  config.generator.num_users = 8;
  return config;
}

core::BigCityConfig TinyModelConfig() {
  core::BigCityConfig config;
  config.d_model = 32;
  config.num_heads = 2;
  config.num_layers = 1;
  config.spatial_dim = 16;
  config.gat_hidden = 16;
  config.lora_rank = 4;
  return config;
}

struct TrainOutcome {
  float stage1_loss = 0;
  float stage2_loss = 0;
  std::vector<std::pair<std::string, std::vector<float>>> parameters;
};

/// Runs the full three-stage pipeline on a fresh tiny city with fixed
/// seeds and snapshots the final parameters. Any divergence between two
/// outcomes means the allocation strategy leaked into the numerics.
TrainOutcome RunTraining(bool plans, int threads, const char* name) {
  const int previous_threads = kernels::NumThreads();
  kernels::SetNumThreads(threads);
  data::CityDataset dataset(TinyCity(name, 4242));
  core::BigCityModel model(&dataset, TinyModelConfig());
  train::TrainConfig config;
  config.pretrain_lm_epochs = 1;
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.max_stage1_sequences = 40;
  config.max_task_samples = 24;
  config.plans = plans;
  train::Trainer trainer(&model, config);
  EXPECT_TRUE(trainer.RunAll().ok());
  TrainOutcome outcome;
  outcome.stage1_loss = trainer.last_stage1_loss();
  outcome.stage2_loss = trainer.last_stage2_loss();
  for (const auto& [param_name, tensor] : model.NamedParameters()) {
    outcome.parameters.emplace_back(
        param_name,
        std::vector<float>(tensor.data().begin(), tensor.data().end()));
  }
  kernels::SetNumThreads(previous_threads);
  return outcome;
}

void ExpectBitIdentical(const TrainOutcome& a, const TrainOutcome& b) {
  // Exact float equality on purpose: replay runs the same op code in the
  // same order, only the allocator differs, so every bit must match.
  EXPECT_EQ(a.stage1_loss, b.stage1_loss);
  EXPECT_EQ(a.stage2_loss, b.stage2_loss);
  ASSERT_EQ(a.parameters.size(), b.parameters.size());
  for (size_t i = 0; i < a.parameters.size(); ++i) {
    EXPECT_EQ(a.parameters[i].first, b.parameters[i].first);
    const auto& pa = a.parameters[i].second;
    const auto& pb = b.parameters[i].second;
    ASSERT_EQ(pa.size(), pb.size()) << a.parameters[i].first;
    EXPECT_EQ(0, std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(float)))
        << "parameter diverged: " << a.parameters[i].first;
  }
}

TEST(PlanParityTest, TrainingBitIdenticalToEagerSingleThread) {
  const TrainOutcome eager = RunTraining(false, 1, "XA-plan-e1");
  const TrainOutcome planned = RunTraining(true, 1, "XA-plan-p1");
  ExpectBitIdentical(eager, planned);
}

TEST(PlanParityTest, TrainingBitIdenticalToEagerFourThreads) {
  const TrainOutcome eager = RunTraining(false, 4, "XA-plan-e4");
  const TrainOutcome planned = RunTraining(true, 4, "XA-plan-p4");
  ExpectBitIdentical(eager, planned);
}

TEST(PlanParityTest, InferenceReplayBitIdenticalToEager) {
  data::CityDataset dataset(TinyCity("XA-plan-serve", 777));
  core::BigCityModel model(&dataset, TinyModelConfig());
  const data::Trajectory& trajectory = dataset.train().front();

  model.BeginStep();
  auto eager = model.TryNextHopLogits(trajectory);
  ASSERT_TRUE(eager.ok());
  const std::vector<float> expected(eager.value().data().begin(),
                                    eager.value().data().end());

  PlanCache cache(/*capacity=*/4, /*enabled=*/true);
  // First pass captures, later passes replay from the recycled arena; all
  // must match eager bit for bit.
  for (int pass = 0; pass < 3; ++pass) {
    model.BeginStep();
    Tensor out;
    {
      NoGradGuard no_grad;
      PlanScope scope(&cache, {"next_hop", 64});
      EXPECT_TRUE(scope.active());
      EXPECT_EQ(scope.capturing(), pass == 0);
      auto result = model.TryNextHopLogits(trajectory);
      ASSERT_TRUE(result.ok());
      ArenaPin pin;
      out = result.value().Detached();
      result = util::Result<Tensor>(out);
    }
    ASSERT_EQ(out.data().size(), expected.size());
    EXPECT_EQ(0, std::memcmp(out.data().data(), expected.data(),
                             expected.size() * sizeof(float)))
        << "replay diverged on pass " << pass;
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(TensorArenaTest, SteadyStateRecyclesWithoutGrowth) {
  if constexpr (TensorArena::kShadowHeap) {
    GTEST_SKIP() << "shadow-heap mode allocates every block individually";
  }
  TensorArena arena(/*initial_slab_bytes=*/4 * 1024);
  size_t stable_capacity = 0;
  uint64_t stable_slabs = 0;
  for (int step = 0; step < 6; ++step) {
    void* a = arena.Allocate(40 * 1024);
    void* b = arena.Allocate(512);
    // Freed block of a repeated size is recycled within the step.
    arena.Deallocate(a, 40 * 1024);
    void* c = arena.Allocate(40 * 1024);
    EXPECT_EQ(a, c);
    arena.Deallocate(b, 512);
    arena.Deallocate(c, 40 * 1024);
    EXPECT_EQ(arena.outstanding(), 0);
    arena.Reset();
    if (step == 1) {
      stable_capacity = arena.capacity_bytes();
      stable_slabs = arena.slab_allocs();
    }
  }
  // Identical steps after the first never grow the arena again.
  EXPECT_EQ(arena.capacity_bytes(), stable_capacity);
  EXPECT_EQ(arena.slab_allocs(), stable_slabs);
  EXPECT_EQ(arena.poisoned_resets(), 0u);
}

TEST(TensorArenaTest, PoisonValveKeepsStaleTensorValid) {
  TensorArena arena(/*initial_slab_bytes=*/4 * 1024);
  float* stale = static_cast<float*>(arena.Allocate(64 * sizeof(float)));
  for (int i = 0; i < 64; ++i) stale[i] = static_cast<float>(i);
  // Reset with the allocation still live: the arena must retire the slab
  // (bounded leak), not recycle it under the live pointer.
  arena.Reset();
  EXPECT_EQ(arena.poisoned_resets(), 1u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(stale[i], static_cast<float>(i));
  }
  EXPECT_TRUE(arena.Owns(stale));
  arena.Deallocate(stale, 64 * sizeof(float));
  EXPECT_EQ(arena.outstanding(), 0);
  arena.Reset();  // Clean reset reclaims the retired slab.
}

TEST(PlanCacheTest, LruEvictionAndCounters) {
  PlanCache cache(/*capacity=*/2, /*enabled=*/true);
  EXPECT_NE(cache.Acquire({"a", 0}), nullptr);  // miss
  EXPECT_NE(cache.Acquire({"b", 0}), nullptr);  // miss
  EXPECT_NE(cache.Acquire({"a", 0}), nullptr);  // hit
  EXPECT_NE(cache.Acquire({"c", 0}), nullptr);  // miss, evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Acquire({"b", 0}), nullptr);  // miss again, evicts a
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(PlanCacheTest, BucketsAreDistinctKeys) {
  PlanCache cache(/*capacity=*/4, /*enabled=*/true);
  ExecutionPlan* small = cache.Acquire({"next_hop", 64});
  ExecutionPlan* large = cache.Acquire({"next_hop", 128});
  EXPECT_NE(small, large);
  EXPECT_EQ(cache.Acquire({"next_hop", 64}), small);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanScopeTest, FallsBackToEagerWithoutCache) {
  {
    PlanScope scope(nullptr, {"x", 0});
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(TensorArena::Current(), nullptr);
  }
  PlanCache disabled(/*capacity=*/4, /*enabled=*/false);
  {
    PlanScope scope(&disabled, {"x", 0});
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(TensorArena::Current(), nullptr);
  }
  PlanCache zero_capacity(/*capacity=*/0, /*enabled=*/true);
  {
    PlanScope scope(&zero_capacity, {"x", 0});
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(TensorArena::Current(), nullptr);
  }
}

TEST(PlanScopeTest, ReplayDoesNoTrackedAllocation) {
#if !BIGCITY_OBS
  GTEST_SKIP() << "MemoryTracker accounting requires BIGCITY_OBS";
#else
  if constexpr (TensorArena::kShadowHeap) {
    GTEST_SKIP() << "shadow-heap mode routes arena blocks through the heap";
  }
  PlanCache cache(/*capacity=*/2, /*enabled=*/true);
  auto step = [&] {
    PlanScope scope(&cache, {"unit", 0});
    Tensor a = Tensor::Full({64, 64}, 0.5f);
    Tensor b = Add(a, a);
    Tensor c = Mul(b, a);
    EXPECT_EQ(c.at(0, 0), 0.5f);
  };
  step();  // Capture sizes the arena.
  auto& memory = obs::MemoryTracker::Global();
  const int64_t arena_bytes_before = TensorArena::TotalBytes();
  const int64_t churn_before = memory.alloc_bytes();
  for (int i = 0; i < 4; ++i) step();  // Replays.
  // Replay steps recycle the captured arena: no tracked heap traffic, no
  // arena growth.
  EXPECT_EQ(memory.alloc_bytes(), churn_before);
  EXPECT_EQ(TensorArena::TotalBytes(), arena_bytes_before);
  EXPECT_EQ(cache.hits(), 4u);
#endif
}

}  // namespace
}  // namespace bigcity::nn
