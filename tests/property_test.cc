// Parameterized property tests: invariants that must hold across sweeps of
// sizes, ratios, and seeds.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/masking.h"
#include "data/st_unit.h"
#include "data/trajectory_generator.h"
#include "nn/ops.h"
#include "roadnet/shortest_path.h"
#include "roadnet/synthetic_city.h"
#include "train/metrics.h"

namespace bigcity {
namespace {

// --- Masking invariants over (length, ratio) --------------------------------

class MaskingProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MaskingProperty, DownsamplePartitionInvariants) {
  const auto [length, ratio] = GetParam();
  util::Rng rng(static_cast<uint64_t>(length * 1000 + ratio * 100));
  auto kept = data::DownsampleKeepIndices(length, ratio, &rng);
  auto dropped = data::ComplementIndices(length, kept);
  // Endpoints always kept; partition is exact; both sorted and in range.
  EXPECT_EQ(kept.front(), 0);
  EXPECT_EQ(kept.back(), length - 1);
  EXPECT_EQ(kept.size() + dropped.size(), static_cast<size_t>(length));
  for (size_t i = 1; i < kept.size(); ++i) EXPECT_LT(kept[i - 1], kept[i]);
  for (int d : dropped) {
    EXPECT_GT(d, 0);
    EXPECT_LT(d, length - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaskingProperty,
    ::testing::Combine(::testing::Values(2, 5, 12, 24, 60),
                       ::testing::Values(0.0, 0.5, 0.85, 0.95)));

// --- Softmax invariants over shapes -----------------------------------------

class SoftmaxProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SoftmaxProperty, RowsAreDistributions) {
  const auto [rows, cols] = GetParam();
  util::Rng rng(7);
  nn::Tensor x = nn::Tensor::Randn({rows, cols}, &rng, 3.0f);
  nn::Tensor y = nn::Softmax(x);
  for (int r = 0; r < rows; ++r) {
    double sum = 0;
    for (int c = 0; c < cols; ++c) {
      EXPECT_GE(y.at(r, c), 0.0f);
      sum += y.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoftmaxProperty,
                         ::testing::Combine(::testing::Values(1, 3, 17),
                                            ::testing::Values(1, 2, 5, 64)));

// --- Ranking-metric bounds over k --------------------------------------------

class RankingMetricProperty : public ::testing::TestWithParam<int> {};

TEST_P(RankingMetricProperty, BoundsAndOrdering) {
  const int k = GetParam();
  util::Rng rng(99);
  std::vector<std::vector<int>> ranked;
  std::vector<int> targets;
  for (int s = 0; s < 40; ++s) {
    std::vector<int> order = rng.Permutation(20);
    ranked.push_back(order);
    targets.push_back(rng.UniformInt(0, 19));
  }
  const double hr = train::HitRateAtK(ranked, targets, k);
  const double mrr = train::MrrAtK(ranked, targets, k);
  const double ndcg = train::NdcgAtK(ranked, targets, k);
  EXPECT_GE(hr, 0.0);
  EXPECT_LE(hr, 1.0);
  // MRR <= NDCG <= HR for a single relevant item.
  EXPECT_LE(mrr, ndcg + 1e-12);
  EXPECT_LE(ndcg, hr + 1e-12);
  // Monotone in k.
  if (k > 1) {
    EXPECT_GE(hr, train::HitRateAtK(ranked, targets, k - 1) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RankingMetricProperty,
                         ::testing::Values(1, 3, 5, 10, 20));

// --- City generation invariants over grid sizes -------------------------------

class CityProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CityProperty, SegmentsComeInDirectedPairsOnValidGrid) {
  const auto [w, h] = GetParam();
  roadnet::SyntheticCityConfig config;
  config.grid_width = w;
  config.grid_height = h;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(config);
  // Streets are bidirectional: segment count is even, and every segment's
  // reverse twin exists.
  EXPECT_EQ(network.num_segments() % 2, 0);
  for (int i = 0; i < network.num_segments(); i += 2) {
    const auto& forward = network.segment(i);
    const auto& backward = network.segment(i + 1);
    EXPECT_EQ(forward.from_intersection, backward.to_intersection);
    EXPECT_EQ(forward.to_intersection, backward.from_intersection);
  }
  // Highway ring keeps the border strongly connected: from any highway
  // segment, all highway segments are reachable.
  int highway = -1;
  for (const auto& s : network.segments()) {
    if (s.type == roadnet::RoadType::kHighway) {
      highway = s.id;
      break;
    }
  }
  ASSERT_GE(highway, 0);
  auto dist = roadnet::HopDistances(network, highway);
  for (const auto& s : network.segments()) {
    if (s.type == roadnet::RoadType::kHighway) {
      EXPECT_GE(dist[static_cast<size_t>(s.id)], 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CityProperty,
                         ::testing::Combine(::testing::Values(3, 6, 9),
                                            ::testing::Values(3, 7)));

// --- Generator invariants over seeds -------------------------------------------

class GeneratorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorProperty, TripsAreWellFormed) {
  roadnet::SyntheticCityConfig city;
  city.grid_width = 5;
  city.grid_height = 5;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city);
  data::TrajectoryGeneratorConfig config;
  config.num_users = 6;
  config.num_trajectories = 50;
  config.seed = GetParam();
  data::TrajectoryGenerator generator(&network, config);
  auto trips = generator.Generate();
  EXPECT_GE(trips.size(), 25u);
  for (const auto& trip : trips) {
    EXPECT_GE(trip.length(), config.min_hops);
    EXPECT_GE(trip.user_id, 0);
    EXPECT_LT(trip.user_id, config.num_users);
    for (int l = 0; l < trip.length(); ++l) {
      EXPECT_GE(trip.points[static_cast<size_t>(l)].segment, 0);
      EXPECT_LT(trip.points[static_cast<size_t>(l)].segment,
                network.num_segments());
      if (l > 0) {
        EXPECT_GT(trip.points[static_cast<size_t>(l)].timestamp,
                  trip.points[static_cast<size_t>(l - 1)].timestamp);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratorProperty,
                         ::testing::Values(1u, 42u, 777u, 31337u));

// --- Time-feature invariants over times -----------------------------------------

class TimeFeatureProperty : public ::testing::TestWithParam<double> {};

TEST_P(TimeFeatureProperty, UnitCircleAndRange) {
  const double t = GetParam();
  auto f = data::TimeFeatures(t);
  EXPECT_NEAR(f[0] * f[0] + f[1] * f[1], 1.0f, 1e-5f);  // Hour on circle.
  EXPECT_NEAR(f[2] * f[2] + f[3] * f[3], 1.0f, 1e-5f);  // Day on circle.
  EXPECT_GE(f[4], 0.0f);
  EXPECT_LT(f[4], 1.0f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimeFeatureProperty,
                         ::testing::Values(0.0, 3601.0, 86399.0, 86400.0,
                                           123456.7, 7.0 * 86400.0 + 1.0));

}  // namespace
}  // namespace bigcity
