#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace bigcity::util {
namespace {

TEST(ThreadPoolTest, CoversEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kN, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  pool.ParallelFor(0, 100, 10, [&](int64_t, int64_t) {
    if (std::this_thread::get_id() != caller) off_thread++;
  });
  EXPECT_EQ(off_thread.load(), 0);
}

// Regression for the serve runtime's usage: several request workers all
// forward through the one global pool at the same time. Before ParallelFor
// was serialized on a submit mutex, a second caller could overwrite the
// in-flight job's descriptor fields and chunks were lost or double-run.
TEST(ThreadPoolTest, ConcurrentCallersEachSeeCompleteJobs) {
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int kRounds = 25;
  constexpr int64_t kN = 512;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::vector<std::atomic<int>> hits(kN);
      for (int round = 0; round < kRounds; ++round) {
        for (auto& h : hits) h.store(0);
        // Caller-specific grain so concurrent jobs have different chunk
        // geometry (the overwrite bug corrupted exactly these fields).
        const int64_t grain = 16 + 8 * (c % 4);
        pool.ParallelFor(0, kN, grain, [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            hits[static_cast<size_t>(i)]++;
          }
        });
        for (int64_t i = 0; i < kN; ++i) {
          if (hits[static_cast<size_t>(i)].load() != 1) {
            failures++;
            return;
          }
        }
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPoolTest, ShutdownUnderLoadJoinsCleanly) {
  // Destroy pools while external threads are still submitting work right
  // up to the end; the destructor must wait for the in-flight job and the
  // workers must exit without touching freed state (ASan/UBSan lane).
  for (int cycle = 0; cycle < 10; ++cycle) {
    std::atomic<bool> stop{false};
    std::atomic<int64_t> sum{0};
    {
      ThreadPool pool(3);
      std::vector<std::thread> submitters;
      for (int s = 0; s < 3; ++s) {
        submitters.emplace_back([&] {
          while (!stop.load()) {
            pool.ParallelFor(0, 256, 32, [&](int64_t begin, int64_t end) {
              sum.fetch_add(end - begin, std::memory_order_relaxed);
            });
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      stop.store(true);
      for (auto& submitter : submitters) submitter.join();
      // Pool destructor runs here with no job in flight but workers live.
    }
    EXPECT_GT(sum.load(), 0);
  }
}

TEST(ThreadPoolTest, GlobalPoolResizeRoundTrips) {
  const int before = GlobalThreadCount();
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadCount(), 3);
  std::atomic<int64_t> sum{0};
  GlobalThreadPool().ParallelFor(0, 100, 7, [&](int64_t begin, int64_t end) {
    sum.fetch_add(end - begin);
  });
  EXPECT_EQ(sum.load(), 100);
  SetGlobalThreadCount(before);
  EXPECT_EQ(GlobalThreadCount(), before);
}

}  // namespace
}  // namespace bigcity::util
