// Hand-built cases for the HMM map-matching decoder shared by the
// Linear+HMM and DTHR+HMM recovery baselines.
#include <gtest/gtest.h>

#include "baselines/recovery/recovery_model.h"
#include "roadnet/road_network.h"

namespace bigcity::baselines {
namespace {

/// A 4-segment one-way chain 0 -> 1 -> 2 -> 3 with midpoints at
/// x = 0, 100, 200, 300 (y = 0).
roadnet::RoadNetwork Chain() {
  std::vector<roadnet::RoadSegment> segments(4);
  for (int i = 0; i < 4; ++i) {
    segments[static_cast<size_t>(i)].id = i;
    segments[static_cast<size_t>(i)].from_intersection = i;
    segments[static_cast<size_t>(i)].to_intersection = i + 1;
    segments[static_cast<size_t>(i)].mid_x = static_cast<float>(100 * i);
    segments[static_cast<size_t>(i)].mid_y = 0.0f;
    segments[static_cast<size_t>(i)].length_m = 100.0f;
  }
  return roadnet::RoadNetwork(std::move(segments));
}

TEST(ViterbiTest, DecodesExactObservations) {
  roadnet::RoadNetwork network = Chain();
  std::vector<std::pair<float, float>> observations = {
      {0, 0}, {100, 0}, {200, 0}, {300, 0}};
  std::vector<int> pinned = {-1, -1, -1, -1};
  auto path = ViterbiDecode(network, observations, pinned);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ViterbiTest, RespectsPinnedStates) {
  roadnet::RoadNetwork network = Chain();
  // Observations pull toward segment 0, but the pins force 1 -> 2.
  std::vector<std::pair<float, float>> observations = {
      {0, 0}, {0, 0}, {0, 0}};
  std::vector<int> pinned = {1, -1, 3};
  auto path = ViterbiDecode(network, observations, pinned);
  EXPECT_EQ(path.front(), 1);
  EXPECT_EQ(path.back(), 3);
  EXPECT_EQ(path[1], 2);  // Only network-consistent bridge.
}

TEST(ViterbiTest, TransitionsFollowNetwork) {
  roadnet::RoadNetwork network = Chain();
  // Ambiguous middle observation: decoded path must still be a valid walk
  // (successor or self at each step).
  std::vector<std::pair<float, float>> observations = {
      {0, 0}, {150, 40}, {300, 0}};
  std::vector<int> pinned = {0, -1, 3};
  auto path = ViterbiDecode(network, observations, pinned);
  ASSERT_EQ(path.size(), 3u);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const auto& successors = network.successors(path[i]);
    const bool valid =
        path[i + 1] == path[i] ||
        std::find(successors.begin(), successors.end(), path[i + 1]) !=
            successors.end();
    EXPECT_TRUE(valid) << path[i] << " -> " << path[i + 1];
  }
}

TEST(ViterbiTest, SelfLoopPenalized) {
  roadnet::RoadNetwork network = Chain();
  // Two identical observations at segment 1's midpoint. Because self loops
  // carry a penalty, the decoder prefers the moving interpretation 0 -> 1
  // over staying 1 -> 1 — consecutive trajectory samples usually advance.
  std::vector<std::pair<float, float>> observations = {{100, 0}, {100, 0}};
  std::vector<int> pinned = {-1, -1};
  auto path = ViterbiDecode(network, observations, pinned);
  EXPECT_EQ(path[1], 1);  // Ends at the observed segment...
  EXPECT_EQ(path[0], 0);  // ...reached by moving, not waiting.
}

TEST(ViterbiTest, SingleObservation) {
  roadnet::RoadNetwork network = Chain();
  auto path = ViterbiDecode(network, {{210, 5}}, {-1});
  EXPECT_EQ(path, (std::vector<int>{2}));
}

}  // namespace
}  // namespace bigcity::baselines
