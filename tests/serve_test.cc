#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission_queue.h"
#include "serve/baseline.h"
#include "serve/circuit_breaker.h"
#include "serve/server.h"
#include "util/fault_injection.h"

namespace bigcity::serve {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

/// Counter-delta assertion that degrades to a no-op under the obs-off
/// build flavor, where every BIGCITY_COUNTER_INC probe compiles out and
/// the registry never moves. The behavioral assertions around each call
/// still run there; only the instrumentation check is skipped.
void ExpectCounterDelta(const char* name, uint64_t before, uint64_t delta) {
#if BIGCITY_OBS
  EXPECT_EQ(CounterValue(name), before + delta) << name;
#else
  (void)name;
  (void)before;
  (void)delta;
#endif
}

void ExpectCounterDeltaAtLeast(const char* name, uint64_t before,
                               uint64_t delta) {
#if BIGCITY_OBS
  EXPECT_GE(CounterValue(name), before + delta) << name;
#else
  (void)name;
  (void)before;
  (void)delta;
#endif
}

/// Shared tiny dataset + prototype model (weights copied into server
/// replicas), built once for the suite.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = data::ScaleConfig(data::XianLikeConfig(), 0.1);
    config.city.grid_width = 5;
    config.city.grid_height = 5;
    dataset_ = new data::CityDataset(config);
    model_config_.d_model = 32;
    model_config_.num_heads = 2;
    model_config_.num_layers = 1;
    model_config_.spatial_dim = 16;
    model_config_.gat_hidden = 16;
    prototype_ = new core::BigCityModel(dataset_, model_config_);
  }
  static void TearDownTestSuite() {
    delete prototype_;
    delete dataset_;
    prototype_ = nullptr;
    dataset_ = nullptr;
  }
  void TearDown() override { util::FaultInjection::DisarmAll(); }

  static const data::Trajectory& AnyTrajectory(int min_len = 5) {
    for (const auto& t : dataset_->train()) {
      if (t.length() >= min_len) return t;
    }
    return dataset_->train().front();
  }

  static ServeOptions FastOptions() {
    ServeOptions options;
    options.num_workers = 1;
    options.queue_capacity = 8;
    options.retry_backoff_ms = 0.1;
    return options;
  }

  static Request NextHopRequest() {
    Request request;
    request.task = core::Task::kNextHop;
    request.trajectory = AnyTrajectory();
    return request;
  }

  static data::CityDataset* dataset_;
  static core::BigCityConfig model_config_;
  static core::BigCityModel* prototype_;
};

data::CityDataset* ServeTest::dataset_ = nullptr;
core::BigCityConfig ServeTest::model_config_;
core::BigCityModel* ServeTest::prototype_ = nullptr;

// --- Admission queue / circuit breaker units --------------------------------

TEST(AdmissionQueueTest, ShedsWhenFullAndDrainsOnClose) {
  AdmissionQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // Full: shed.
  EXPECT_EQ(queue.depth(), 2u);
  queue.Close();
  EXPECT_FALSE(queue.TryPush(4));  // Closed: shed.
  // Items queued before Close() still drain.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());  // Closed + drained.
}

TEST(CircuitBreakerTest, OpensAfterThresholdAndProbesAfterCooldown) {
  const auto t0 = std::chrono::steady_clock::now();
  CircuitBreaker breaker(/*failure_threshold=*/2, /*cooldown_ms=*/10);
  EXPECT_EQ(breaker.Admit(t0), CircuitBreaker::Decision::kAllow);
  EXPECT_FALSE(breaker.RecordFailure(t0));
  EXPECT_TRUE(breaker.RecordFailure(t0));  // Threshold hit: opens.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Admit(t0), CircuitBreaker::Decision::kReject);
  // After the cooldown one probe is admitted; concurrent requests reject.
  const auto t1 = t0 + std::chrono::milliseconds(11);
  EXPECT_EQ(breaker.Admit(t1), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.Admit(t1), CircuitBreaker::Decision::kReject);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.Admit(t1), CircuitBreaker::Decision::kAllow);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  const auto t0 = std::chrono::steady_clock::now();
  CircuitBreaker breaker(1, 10);
  EXPECT_TRUE(breaker.RecordFailure(t0));
  const auto t1 = t0 + std::chrono::milliseconds(11);
  EXPECT_EQ(breaker.Admit(t1), CircuitBreaker::Decision::kProbe);
  EXPECT_TRUE(breaker.RecordFailure(t1));  // Probe failed: re-opens.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Admit(t1 + std::chrono::milliseconds(1)),
            CircuitBreaker::Decision::kReject);
}

// --- Happy path -------------------------------------------------------------

TEST_F(ServeTest, ResponseBitIdenticalToDirectForward) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());

  Request request = NextHopRequest();
  request.id = 42;
  Response response = server.ServeSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.outcome, Outcome::kOk);
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.id, 42u);
  EXPECT_EQ(response.retries, 0);

  prototype_->BeginStep();
  nn::Tensor expected = prototype_->NextHopLogits(
      prototype_->ClipTrajectory(request.trajectory));
  ASSERT_EQ(response.output.shape(), expected.shape());
  const auto& got = response.output.data();
  const auto& want = expected.data();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    // Bit-identical, not approximately equal: the serving path must not
    // perturb the numerics.
    EXPECT_EQ(got[i], want[i]) << "at " << i;
  }
}

TEST_F(ServeTest, ServesEveryTask) {
  ServeOptions options = FastOptions();
  options.num_workers = 2;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  data::Trajectory trajectory = AnyTrajectory();
  // Recovery rejects trajectories beyond max_trajectory_tokens; keep the
  // shared trajectory short enough for every task.
  if (trajectory.length() > 10) trajectory.points.resize(10);
  std::vector<Request> requests;
  for (core::Task task :
       {core::Task::kNextHop, core::Task::kTravelTimeEstimation,
        core::Task::kTrajClassification, core::Task::kMostSimilarSearch,
        core::Task::kTrafficOneStep, core::Task::kTrafficMultiStep,
        core::Task::kTrafficImputation, core::Task::kTrajRecovery}) {
    Request request;
    request.task = task;
    request.trajectory = trajectory;
    request.horizon = 2;
    request.window = 8;
    request.masked = {2, 5};
    if (task == core::Task::kTrajRecovery) {
      request.kept = {0, trajectory.length() - 1};
    }
    requests.push_back(std::move(request));
  }
  std::vector<std::future<Response>> futures;
  for (auto& request : requests) futures.push_back(server.Submit(request));
  for (size_t i = 0; i < futures.size(); ++i) {
    Response response = futures[i].get();
    EXPECT_TRUE(response.status.ok())
        << "task " << i << ": " << response.status.ToString();
    EXPECT_TRUE(response.output.is_valid());
  }
}

// --- Load shedding ----------------------------------------------------------

TEST_F(ServeTest, FullQueueShedsWithResourceExhausted) {
  ServeOptions options = FastOptions();
  options.queue_capacity = 1;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t shed_before = CounterValue("serve.shed");
  util::ScopedFault hold(util::kFaultServeWorkerHold, 0, 1, /*param=*/1);

  // First request: dequeued, worker parks on the hold site.
  std::future<Response> parked = server.Submit(NextHopRequest());
  while (hold.fire_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Second request occupies the single queue slot; third must shed.
  std::future<Response> queued = server.Submit(NextHopRequest());
  Response shed = server.ServeSync(NextHopRequest());
  EXPECT_EQ(shed.status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.outcome, Outcome::kShed);
  EXPECT_FALSE(shed.output.is_valid());
  ExpectCounterDelta("serve.shed", shed_before, 1);
  EXPECT_GT(hold.fire_count(), 0);

  util::FaultInjection::Disarm(util::kFaultServeWorkerHold);  // Release.
  EXPECT_TRUE(parked.get().status.ok());
  EXPECT_TRUE(queued.get().status.ok());
}

TEST_F(ServeTest, StoppedServerSheds) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  Response response = server.ServeSync(NextHopRequest());
  EXPECT_EQ(response.status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(response.outcome, Outcome::kShed);
}

// --- Deadlines --------------------------------------------------------------

TEST_F(ServeTest, DeadlineExpiryAtEveryCheckpoint) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());

  struct Case {
    const char* site;
    const char* counter;
  };
  const Case cases[] = {
      {util::kFaultServeExpireAtAdmit, "serve.deadline.pre_queue"},
      {util::kFaultServeExpireAtTokenize, "serve.deadline.pre_tokenize"},
      {util::kFaultServeExpireAtForward, "serve.deadline.pre_forward"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.site);
    const uint64_t before = CounterValue(c.counter);
    util::ScopedFault expire(c.site);
    Response response = server.ServeSync(NextHopRequest());
    EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);
    EXPECT_EQ(response.outcome, Outcome::kDeadline);
    EXPECT_FALSE(response.output.is_valid());
    ExpectCounterDelta(c.counter, before, 1);
    EXPECT_GT(expire.fire_count(), 0);
  }
  // The fault checkpoints did not wedge anything: a normal request works.
  EXPECT_TRUE(server.ServeSync(NextHopRequest()).status.ok());
}

TEST_F(ServeTest, RealDeadlineExpiresQueuedRequest) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());

  // Park the worker so the request's budget burns down in the queue; the
  // pre-tokenize checkpoint must then fire on the real clock.
  util::ScopedFault hold(util::kFaultServeWorkerHold, 0, 1, /*param=*/1);
  std::future<Response> parked = server.Submit(NextHopRequest());
  while (hold.fire_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Request doomed = NextHopRequest();
  doomed.deadline_ms = 5;
  std::future<Response> future = server.Submit(doomed);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  util::FaultInjection::Disarm(util::kFaultServeWorkerHold);

  EXPECT_TRUE(parked.get().status.ok());
  Response response = future.get();
  EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.outcome, Outcome::kDeadline);
}

TEST_F(ServeTest, StallSlowsButCompletesWhenWatchdogDisabled) {
  // hang_threshold_ms = 0 turns the watchdog off entirely: a mid-request
  // stall makes the request slow, never reaped — the caller still gets
  // the real result (DESIGN.md §4.16).
  ServeOptions options = FastOptions();
  options.hang_threshold_ms = 0;
  options.watchdog_poll_ms = 1;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  util::ScopedFault stall(util::kFaultServeWorkerStall, 0, 1, /*param=*/30);
  Response response = server.ServeSync(NextHopRequest());
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.outcome, Outcome::kOk);
  EXPECT_GE(response.total_us, 20000.0);  // The stall showed up end to end.
  EXPECT_EQ(server.watchdog_hangs(), 0u);
  EXPECT_EQ(server.watchdog_reaps(), 0u);
}

// --- Retries and circuit breaking -------------------------------------------

TEST_F(ServeTest, TransientForwardFaultRetriesThenSucceeds) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t retries_before = CounterValue("serve.retries");
  util::ScopedFault fault(util::kFaultServeForwardFail, 0, /*count=*/2);
  Response response = server.ServeSync(NextHopRequest());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.retries, 2);
  EXPECT_FALSE(response.degraded);
  EXPECT_TRUE(response.output.is_valid());
  ExpectCounterDelta("serve.retries", retries_before, 2);
  EXPECT_EQ(fault.fire_count(), 2);
  EXPECT_EQ(server.breaker_state(core::Task::kNextHop),
            CircuitBreaker::State::kClosed);
}

TEST_F(ServeTest, TransientTokenizeFaultRetriesThenSucceeds) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());

  util::ScopedFault fault(util::kFaultServeTokenizeFail, 0, 1);
  Response response = server.ServeSync(NextHopRequest());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.retries, 1);
  EXPECT_EQ(fault.fire_count(), 1);
}

TEST_F(ServeTest, ExhaustedRetriesOpenBreakerThenDegrade) {
  ServeOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_ms = 60000;  // Stays open for the whole test.
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t failures_before = CounterValue("serve.failures");
  const uint64_t opened_before = CounterValue("serve.breaker.opened");
  const uint64_t degraded_before = CounterValue("serve.degraded.breaker");
  util::ScopedFault fault(util::kFaultServeForwardFail, 0, /*count=*/2);
  for (int i = 0; i < 2; ++i) {
    Response response = server.ServeSync(NextHopRequest());
    EXPECT_EQ(response.status.code(), util::StatusCode::kUnavailable);
    EXPECT_EQ(response.outcome, Outcome::kFailed);
  }
  EXPECT_EQ(fault.fire_count(), 2);
  ExpectCounterDelta("serve.failures", failures_before, 2);
  ExpectCounterDelta("serve.breaker.opened", opened_before, 1);
  EXPECT_EQ(server.breaker_state(core::Task::kNextHop),
            CircuitBreaker::State::kOpen);

  // Breaker open + degradable task: answered by the baseline, marked
  // degraded, status still OK.
  Request request = NextHopRequest();
  Response degraded = server.ServeSync(request);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_EQ(degraded.outcome, Outcome::kDegraded);
  EXPECT_TRUE(degraded.degraded);
  ExpectCounterDelta("serve.degraded.breaker", degraded_before, 1);

  BaselinePredictor baseline(dataset_);
  nn::Tensor expected = baseline.NextHopScores(request.trajectory);
  ASSERT_EQ(degraded.output.shape(), expected.shape());
  EXPECT_EQ(degraded.output.data(), expected.data());
}

TEST_F(ServeTest, BreakerRejectsNonDegradableTask) {
  ServeOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 60000;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  Request request;
  request.task = core::Task::kMostSimilarSearch;  // No baseline fallback.
  request.trajectory = AnyTrajectory();
  {
    util::ScopedFault fault(util::kFaultServeForwardFail, 0, 1);
    EXPECT_EQ(server.ServeSync(request).outcome, Outcome::kFailed);
    EXPECT_EQ(fault.fire_count(), 1);
  }
  const uint64_t rejected_before = CounterValue("serve.breaker.rejected");
  Response response = server.ServeSync(request);
  EXPECT_EQ(response.status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(response.outcome, Outcome::kRejected);
  ExpectCounterDelta("serve.breaker.rejected", rejected_before, 1);
}

TEST_F(ServeTest, HalfOpenProbeClosesBreakerOnSuccess) {
  ServeOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 0;  // Next admit is already a probe.
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  {
    util::ScopedFault fault(util::kFaultServeForwardFail, 0, 1);
    EXPECT_EQ(server.ServeSync(NextHopRequest()).outcome, Outcome::kFailed);
  }
  EXPECT_EQ(server.breaker_state(core::Task::kNextHop),
            CircuitBreaker::State::kOpen);
  const uint64_t probes_before = CounterValue("serve.breaker.probes");
  Response probe = server.ServeSync(NextHopRequest());
  ASSERT_TRUE(probe.status.ok()) << probe.status.ToString();
  EXPECT_FALSE(probe.degraded);
  ExpectCounterDelta("serve.breaker.probes", probes_before, 1);
  EXPECT_EQ(server.breaker_state(core::Task::kNextHop),
            CircuitBreaker::State::kClosed);
}

// --- Graceful degradation on tight budgets ----------------------------------

TEST_F(ServeTest, TightBudgetDegradesToBaseline) {
  ServeOptions options = FastOptions();
  options.degrade_on_tight_budget = true;
  options.latency_min_samples = 4;
  // Seeded p95 far above any real deadline: every deadlined degradable
  // request takes the baseline path.
  options.initial_forward_estimate_us = 1e9;
  options.default_deadline_ms = 200;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.forward_p95_us(), 0);

  const uint64_t degraded_before = CounterValue("serve.degraded.budget");
  Request request;
  request.task = core::Task::kTrafficMultiStep;
  request.segment = 3;
  request.start_slice = 0;
  request.horizon = 2;
  Response response = server.ServeSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.outcome, Outcome::kDegraded);
  EXPECT_TRUE(response.degraded);
  ExpectCounterDelta("serve.degraded.budget", degraded_before, 1);

  BaselinePredictor baseline(dataset_);
  nn::Tensor expected =
      baseline.PredictTraffic(request.segment, request.start_slice,
                              model_config_.traffic_input_steps,
                              request.horizon);
  EXPECT_EQ(response.output.data(), expected.data());

  // A request without any deadline is exempt from budget degradation even
  // with the same inflated p95 estimate.
  ServeOptions no_default = options;
  no_default.default_deadline_ms = 0;
  InferenceServer full_server(dataset_, model_config_, no_default,
                              prototype_);
  ASSERT_TRUE(full_server.Start().ok());
  Response full = full_server.ServeSync(request);
  ASSERT_TRUE(full.status.ok()) << full.status.ToString();
  EXPECT_FALSE(full.degraded);
}

// --- Quarantine -------------------------------------------------------------

TEST_F(ServeTest, MalformedRequestsAreQuarantined) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t quarantined_before = CounterValue("serve.quarantined");
  std::vector<Request> corrupt;

  {  // Unknown segment id.
    Request request = NextHopRequest();
    request.trajectory.points[1].segment =
        dataset_->network().num_segments() + 7;
    corrupt.push_back(std::move(request));
  }
  {  // Non-monotone timestamps.
    Request request = NextHopRequest();
    request.trajectory.points[2].timestamp =
        request.trajectory.points[1].timestamp - 100.0;
    corrupt.push_back(std::move(request));
  }
  {  // NaN timestamp.
    Request request = NextHopRequest();
    request.trajectory.points[0].timestamp =
        std::numeric_limits<double>::quiet_NaN();
    corrupt.push_back(std::move(request));
  }
  {  // Traffic window past the end of the series.
    Request request;
    request.task = core::Task::kTrafficOneStep;
    request.segment = 0;
    request.start_slice = dataset_->traffic().num_slices();
    corrupt.push_back(std::move(request));
  }
  {  // Imputation mask outside the window.
    Request request;
    request.task = core::Task::kTrafficImputation;
    request.segment = 0;
    request.window = 8;
    request.masked = {9};
    corrupt.push_back(std::move(request));
  }

  for (size_t i = 0; i < corrupt.size(); ++i) {
    SCOPED_TRACE(i);
    Response response = server.ServeSync(corrupt[i]);
    EXPECT_EQ(response.status.code(), util::StatusCode::kInvalidArgument);
    EXPECT_EQ(response.outcome, Outcome::kQuarantined);
    EXPECT_FALSE(response.output.is_valid());
  }
  ExpectCounterDelta("serve.quarantined", quarantined_before,
                      corrupt.size());
  // Quarantine never trips the breaker and never kills the worker.
  EXPECT_EQ(server.breaker_state(core::Task::kNextHop),
            CircuitBreaker::State::kClosed);
  EXPECT_TRUE(server.ServeSync(NextHopRequest()).status.ok());
}

// --- Replica checkpoint reload ----------------------------------------------

TEST_F(ServeTest, ReplicaReloadRetriesTransientFaults) {
  const std::string path =
      ::testing::TempDir() + "/serve_reload_weights.bin";
  ASSERT_TRUE(prototype_->SaveStateToFile(path).ok());

  ServeOptions options = FastOptions();
  options.checkpoint_path = path;
  const uint64_t retries_before = CounterValue("serve.reload.retries");
  {
    util::ScopedFault fault(util::kFaultServeReloadFail, 0, 1);
    InferenceServer server(dataset_, model_config_, options);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(fault.fire_count(), 1);
    ExpectCounterDeltaAtLeast("serve.reload.retries", retries_before, 1);
    // The reloaded replica serves results identical to the prototype.
    Request request = NextHopRequest();
    Response response = server.ServeSync(request);
    ASSERT_TRUE(response.status.ok());
    prototype_->BeginStep();
    nn::Tensor expected = prototype_->NextHopLogits(
        prototype_->ClipTrajectory(request.trajectory));
    EXPECT_EQ(response.output.data(), expected.data());
  }
  {
    // Persistent reload failure exhausts retries and fails Start().
    util::ScopedFault fault(util::kFaultServeReloadFail, 0, 100);
    InferenceServer server(dataset_, model_config_, options);
    util::Status status = server.Start();
    EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
    EXPECT_GT(fault.fire_count(), 1);
  }
  std::remove(path.c_str());
}

// --- Concurrency ------------------------------------------------------------

TEST_F(ServeTest, ConcurrentMixedLoadStress) {
  ServeOptions options = FastOptions();
  options.num_workers = 4;
  options.queue_capacity = 64;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  std::atomic<int> ok{0}, degraded{0}, shed{0}, deadline{0}, quarantined{0},
      other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Response>> futures;
      for (int i = 0; i < kPerClient; ++i) {
        Request request;
        switch ((c + i) % 4) {
          case 0:  // Valid trajectory task.
            request = NextHopRequest();
            break;
          case 1:  // Valid traffic task.
            request.task = core::Task::kTrafficOneStep;
            request.segment = (c * kPerClient + i) %
                              dataset_->network().num_segments();
            break;
          case 2:  // Corrupt: unknown segment.
            request = NextHopRequest();
            request.trajectory.points[0].segment = -5;
            break;
          case 3:  // Deadline-doomed.
            request = NextHopRequest();
            request.deadline_ms = 1e-6;
            break;
        }
        futures.push_back(server.Submit(std::move(request)));
      }
      for (auto& future : futures) {
        Response response = future.get();
        switch (response.outcome) {
          case Outcome::kOk: ++ok; break;
          case Outcome::kDegraded: ++degraded; break;
          case Outcome::kShed: ++shed; break;
          case Outcome::kDeadline: ++deadline; break;
          case Outcome::kQuarantined: ++quarantined; break;
          default: ++other; break;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  server.Stop();

  EXPECT_EQ(ok + degraded + shed + deadline + quarantined + other,
            kClients * kPerClient);
  EXPECT_EQ(other, 0);
  EXPECT_EQ(quarantined, kClients * kPerClient / 4);
  EXPECT_EQ(deadline, kClients * kPerClient / 4);
  EXPECT_GT(ok.load(), 0);
}

// --- Request tracing and stage breakdown ------------------------------------

TEST_F(ServeTest, ResponsesEchoTraceIdAndStageBreakdown) {
  InferenceServer server(dataset_, model_config_, FastOptions(), prototype_);
  ASSERT_TRUE(server.Start().ok());

  uint64_t previous_id = 0;
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    Response response = server.ServeSync(NextHopRequest());
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // Correlation ids are allocated in every build flavor (the id is part
    // of the response contract, not an obs probe): nonzero and distinct.
    EXPECT_NE(response.trace_id, 0u);
    EXPECT_NE(response.trace_id, previous_id);
    previous_id = response.trace_id;

    // The per-stage clocks partition the same wall interval total_us
    // measures; allow 10% skew plus a floor for scheduler noise between
    // the boundary clock reads.
    EXPECT_GT(response.stages.forward_us, 0.0);
    EXPECT_GE(response.stages.queue_wait_us, 0.0);
    EXPECT_GE(response.stages.batch_wait_us, 0.0);
    EXPECT_GE(response.stages.validate_us, 0.0);
    EXPECT_GE(response.stages.tokenize_us, 0.0);
    EXPECT_GE(response.stages.cache_lookup_us, 0.0);
    EXPECT_GE(response.stages.retry_us, 0.0);
    EXPECT_NEAR(response.stages.Total(), response.total_us,
                std::max(0.10 * response.total_us, 500.0));
  }

  // Failure paths carry the id too: a shed response is still correlatable.
  server.Stop();
  Response shed = server.ServeSync(NextHopRequest());
  EXPECT_EQ(shed.outcome, Outcome::kShed);
  EXPECT_NE(shed.trace_id, 0u);
}

#if BIGCITY_OBS

TEST_F(ServeTest, BatchedRequestFlowsConnectAcrossThreads) {
  auto& buffer = obs::TraceBuffer::Global();
  buffer.SetCapacity(size_t{1} << 18);  // Also clears earlier events.
  obs::SetTracingEnabled(true);

  ServeOptions options = FastOptions();
  options.queue_capacity = 16;
  options.batch_max = 4;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  // Park the single worker on its hold site so the follow-up requests
  // pile up behind it and dispatch as one coalesced batch.
  util::ScopedFault hold(util::kFaultServeWorkerHold, 0, 1, /*param=*/1);
  std::vector<std::future<Response>> futures;
  futures.push_back(server.Submit(NextHopRequest()));
  while (hold.fire_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.Submit(NextHopRequest()));
  }
  util::FaultInjection::Disarm(util::kFaultServeWorkerHold);

  std::vector<Response> responses;
  for (auto& future : futures) responses.push_back(future.get());
  server.Stop();
  obs::SetTracingEnabled(false);

  int batched = 0;
  for (const Response& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    if (response.batch_size > 1) ++batched;
  }
  ASSERT_GT(batched, 0) << "worker hold failed to coalesce a batch";

  const std::vector<obs::TraceEvent> events = buffer.Events();
  ASSERT_EQ(buffer.dropped(), 0u) << "ring too small for this test";
  auto enclosed_by_span = [&events](const obs::TraceEvent& flow) {
    return std::any_of(
        events.begin(), events.end(), [&flow](const obs::TraceEvent& e) {
          return e.phase == 'X' && e.thread_id == flow.thread_id &&
                 e.start_us <= flow.start_us &&
                 flow.start_us <= e.start_us + e.duration_us;
        });
  };
  for (const Response& response : responses) {
    if (response.batch_size <= 1) continue;
    SCOPED_TRACE(response.trace_id);
    // One connected flow: start at submit, step where the batch forward
    // picked the request up, finish at response delivery — spanning at
    // least the client thread and a worker thread.
    bool start = false, step = false, finish = false;
    std::set<uint32_t> threads;
    for (const obs::TraceEvent& event : events) {
      if (event.trace_id != response.trace_id) continue;
      if (event.phase == 's') start = true;
      if (event.phase == 't') step = true;
      if (event.phase == 'f') finish = true;
      if (event.phase != 'X') {
        threads.insert(event.thread_id);
        // chrome attaches each flow marker to the slice enclosing its
        // timestamp on that thread; an unenclosed marker renders as a
        // dangling arrow.
        EXPECT_TRUE(enclosed_by_span(event));
      }
    }
    EXPECT_TRUE(start);
    EXPECT_TRUE(step);
    EXPECT_TRUE(finish);
    EXPECT_GE(threads.size(), 2u);
  }
  // The shared batch forward span exists and carries no single request's
  // id (members are linked to it by their 't' markers instead).
  EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                          [](const obs::TraceEvent& e) {
                            return e.phase == 'X' &&
                                   std::string(e.name) ==
                                       "serve.process_batch";
                          }));
  buffer.SetCapacity(1 << 16);  // Restore the default footprint.
}

#endif  // BIGCITY_OBS

TEST_F(ServeTest, StopDrainsQueuedRequests) {
  ServeOptions options = FastOptions();
  options.queue_capacity = 16;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.Submit(NextHopRequest()));
  server.Stop();  // Drain-then-stop: every future must be resolved.
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
}

}  // namespace
}  // namespace bigcity::serve
