#include "train/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bigcity::train {
namespace {

TEST(RegressionMetricsTest, KnownValues) {
  std::vector<double> pred = {1, 2, 3};
  std::vector<double> target = {2, 2, 5};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(pred, target), 1.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(pred, target),
                   std::sqrt((1.0 + 0.0 + 4.0) / 3.0));
}

TEST(RegressionMetricsTest, MapeSkipsZeroTargets) {
  std::vector<double> pred = {1.0, 5.0};
  std::vector<double> target = {0.0, 4.0};
  EXPECT_DOUBLE_EQ(MeanAbsolutePercentageError(pred, target), 25.0);
}

TEST(RegressionMetricsTest, PerfectPrediction) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(v, v), 0.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(v, v), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsolutePercentageError(v, v), 0.0);
}

TEST(ClassificationMetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75);
}

TEST(RankingMetricsTest, MrrAtK) {
  // Target at rank 1 -> 1.0; rank 2 -> 0.5; absent -> 0.
  std::vector<std::vector<int>> ranked = {{7, 3}, {3, 7}, {1, 2}};
  std::vector<int> targets = {7, 7, 9};
  EXPECT_DOUBLE_EQ(MrrAtK(ranked, targets, 5), (1.0 + 0.5 + 0.0) / 3.0);
}

TEST(RankingMetricsTest, MrrTruncation) {
  std::vector<std::vector<int>> ranked = {{1, 2, 3, 4, 5, 9}};
  std::vector<int> targets = {9};
  EXPECT_DOUBLE_EQ(MrrAtK(ranked, targets, 5), 0.0);  // Rank 6 > k.
  EXPECT_GT(MrrAtK(ranked, targets, 6), 0.0);
}

TEST(RankingMetricsTest, NdcgAtK) {
  std::vector<std::vector<int>> ranked = {{7}, {3, 7}};
  std::vector<int> targets = {7, 7};
  // rank1 -> 1; rank2 -> 1/log2(3).
  EXPECT_NEAR(NdcgAtK(ranked, targets, 5),
              (1.0 + 1.0 / std::log2(3.0)) / 2.0, 1e-12);
}

TEST(RankingMetricsTest, HitRateAndMeanRank) {
  std::vector<std::vector<int>> ranked = {{5, 6, 7}, {8, 9, 1}};
  std::vector<int> targets = {7, 2};
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, targets, 3), 0.5);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, targets, 2), 0.0);
  EXPECT_DOUBLE_EQ(MeanRank(ranked, targets), (3.0 + 4.0) / 2.0);
}

TEST(BinaryMetricsTest, F1) {
  // tp=1 fp=1 fn=1 -> P=0.5 R=0.5 F1=0.5.
  EXPECT_DOUBLE_EQ(BinaryF1({1, 1, 0, 0}, {1, 0, 1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(BinaryF1({0, 0}, {1, 1}), 0.0);
}

TEST(BinaryMetricsTest, AucPerfectAndRandom) {
  EXPECT_DOUBLE_EQ(BinaryAuc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(BinaryAuc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
  // All-tied scores -> 0.5.
  EXPECT_DOUBLE_EQ(BinaryAuc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(MultiClassMetricsTest, PerfectPredictions) {
  std::vector<int> labels = {0, 1, 2, 1};
  EXPECT_DOUBLE_EQ(MicroF1(labels, labels, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(labels, labels, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroRecall(labels, labels, 3), 1.0);
}

TEST(MultiClassMetricsTest, MacroIgnoresAbsentClasses) {
  // Class 2 never appears in targets; macro averages over classes 0 and 1.
  std::vector<int> pred = {0, 1};
  std::vector<int> target = {0, 0};
  // Class 0: tp=1 fn=1 -> recall 0.5. Class 1 absent in targets (skipped).
  EXPECT_DOUBLE_EQ(MacroRecall(pred, target, 3), 0.5);
}

TEST(MultiClassMetricsTest, MicroEqualsAccuracyForSingleLabel) {
  std::vector<int> pred = {0, 1, 2, 2};
  std::vector<int> target = {0, 2, 2, 2};
  // In single-label multi-class, micro-F1 == accuracy.
  EXPECT_NEAR(MicroF1(pred, target, 3), Accuracy(pred, target), 1e-12);
}

}  // namespace
}  // namespace bigcity::train
