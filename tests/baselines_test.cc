#include <gtest/gtest.h>

#include "baselines/recovery/hmm_recovery.h"
#include "baselines/recovery/seq2seq_recovery.h"
#include "baselines/similarity/classic_similarity.h"
#include "baselines/traffic/graph_tcn_models.h"
#include "baselines/traffic/norm_attn_models.h"
#include "baselines/traffic/recurrent_models.h"
#include "baselines/traffic/traffic_harness.h"
#include "baselines/traj/attn_encoders.h"
#include "baselines/traj/jgrm_encoder.h"
#include "baselines/traj/rnn_encoders.h"
#include "baselines/traj/start_encoder.h"
#include "baselines/traj/traj_harness.h"
#include "data/masking.h"
#include "nn/ops.h"

namespace bigcity::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = data::ScaleConfig(data::XianLikeConfig(), 0.12);
    config.city.grid_width = 5;
    config.city.grid_height = 5;
    config.generator.num_users = 8;
    dataset_ = new data::CityDataset(config);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  const data::Trajectory& AnyTrajectory(int min_len = 6) {
    for (const auto& t : dataset_->test()) {
      if (t.length() >= min_len) return t;
    }
    return dataset_->test().front();
  }

  static data::CityDataset* dataset_;
};

data::CityDataset* BaselinesTest::dataset_ = nullptr;

// --- Trajectory encoders -----------------------------------------------------

template <typename Encoder>
void CheckEncoderBasics(data::CityDataset* dataset) {
  util::Rng rng(3);
  Encoder encoder(dataset, 16, &rng);
  data::Trajectory trip;
  for (int i = 0; i < 6; ++i) trip.points.push_back({i % 5, i * 60.0});
  nn::Tensor reps = encoder.SequenceRepresentations(trip);
  EXPECT_EQ(reps.shape(), (std::vector<int64_t>{6, 16}));
  nn::Tensor embedding = encoder.Embed(trip);
  EXPECT_EQ(embedding.shape(), (std::vector<int64_t>{1, 16}));
  // Pretraining must run and change at least one parameter.
  std::vector<data::Trajectory> corpus(dataset->train().begin(),
                                       dataset->train().begin() + 30);
  auto before = encoder.NamedParameters();
  std::vector<std::vector<float>> snapshot;
  for (auto& [name, p] : before) {
    snapshot.emplace_back(p.data().begin(), p.data().end());
  }
  encoder.Pretrain(corpus, 1);
  bool changed = false;
  auto after = encoder.NamedParameters();
  for (size_t i = 0; i < after.size(); ++i) {
    if (after[i].second.data() != snapshot[i]) changed = true;
  }
  EXPECT_TRUE(changed) << "pretraining did not update parameters";
}

TEST_F(BaselinesTest, Trajectory2VecBasics) {
  CheckEncoderBasics<Trajectory2Vec>(dataset_);
}
TEST_F(BaselinesTest, T2VecBasics) { CheckEncoderBasics<T2Vec>(dataset_); }
TEST_F(BaselinesTest, TremBrBasics) { CheckEncoderBasics<TremBr>(dataset_); }
TEST_F(BaselinesTest, ToastBasics) { CheckEncoderBasics<Toast>(dataset_); }
TEST_F(BaselinesTest, JclrntBasics) { CheckEncoderBasics<Jclrnt>(dataset_); }
TEST_F(BaselinesTest, StartBasics) {
  CheckEncoderBasics<StartEncoder>(dataset_);
}
TEST_F(BaselinesTest, JgrmBasics) {
  CheckEncoderBasics<JgrmEncoder>(dataset_);
}

TEST_F(BaselinesTest, HarnessNextHopAboveZero) {
  util::Rng rng(4);
  TremBr encoder(dataset_, 16, &rng);
  TrajHarnessConfig config;
  config.pretrain_epochs = 1;
  config.task_epochs = 2;
  config.max_train_samples = 60;
  config.eval.max_samples = 40;
  TrajTaskHarness harness(&encoder, config);
  harness.Pretrain();
  auto metrics = harness.TrainAndEvalNextHop();
  EXPECT_GT(metrics.mrr5, 0.0);
  EXPECT_GE(metrics.ndcg5, metrics.mrr5 - 1e-9);
}

TEST_F(BaselinesTest, HarnessTteAndSimilarity) {
  util::Rng rng(5);
  Trajectory2Vec encoder(dataset_, 16, &rng);
  TrajHarnessConfig config;
  config.pretrain_epochs = 1;
  config.task_epochs = 1;
  config.max_train_samples = 40;
  config.eval.max_samples = 30;
  config.eval.max_queries = 20;
  TrajTaskHarness harness(&encoder, config);
  harness.Pretrain();
  auto tte = harness.TrainAndEvalTravelTime();
  EXPECT_GT(tte.mae, 0.0);
  EXPECT_GE(tte.rmse, tte.mae);
  auto simi = harness.EvalSimilarity();
  EXPECT_GE(simi.hr10, simi.hr1);
  EXPECT_GT(simi.mean_rank, 0.0);
}

TEST_F(BaselinesTest, HarnessUserClassification) {
  util::Rng rng(6);
  T2Vec encoder(dataset_, 16, &rng);
  TrajHarnessConfig config;
  config.pretrain_epochs = 1;
  config.task_epochs = 1;
  config.max_train_samples = 40;
  config.eval.max_samples = 30;
  TrajTaskHarness harness(&encoder, config);
  auto metrics = harness.TrainAndEvalUserClassification();
  EXPECT_GE(metrics.micro_f1, 0.0);
  EXPECT_LE(metrics.micro_f1, 1.0);
}

// --- Traffic models ----------------------------------------------------------

template <typename Model>
void CheckTrafficModel(data::CityDataset* dataset) {
  util::Rng rng(7);
  const int window = 12, horizon = 3;
  Model model(dataset, window, data::kTrafficChannels,
              horizon * data::kTrafficChannels, 16, &rng);
  TrafficHarnessConfig config;
  config.epochs = 1;
  config.train_samples = 10;
  config.eval_samples = 10;
  TrafficTaskHarness harness(dataset, config);
  nn::Tensor input = harness.BuildPredictionInput(0);
  EXPECT_EQ(input.shape()[0], dataset->network().num_segments());
  nn::Tensor output = model.Forward(input);
  EXPECT_EQ(output.shape(),
            (std::vector<int64_t>{dataset->network().num_segments(),
                                  horizon * data::kTrafficChannels}));
  // Gradients reach model parameters.
  nn::Sum(nn::Square(output)).Backward();
  bool any_grad = false;
  for (auto& p : model.TrainableParameters()) {
    for (float g : p.grad()) any_grad = any_grad || g != 0.0f;
  }
  EXPECT_TRUE(any_grad);
}

TEST_F(BaselinesTest, DcrnnForward) { CheckTrafficModel<Dcrnn>(dataset_); }
TEST_F(BaselinesTest, TrGnnForward) { CheckTrafficModel<TrGnn>(dataset_); }
TEST_F(BaselinesTest, GwnetForward) {
  CheckTrafficModel<GraphWaveNet>(dataset_);
}
TEST_F(BaselinesTest, MtgnnForward) { CheckTrafficModel<Mtgnn>(dataset_); }
TEST_F(BaselinesTest, StgodeForward) { CheckTrafficModel<StgOde>(dataset_); }
TEST_F(BaselinesTest, StnormForward) { CheckTrafficModel<StNorm>(dataset_); }
TEST_F(BaselinesTest, SstbanForward) { CheckTrafficModel<Sstban>(dataset_); }

TEST_F(BaselinesTest, TrafficHarnessTrainsToReasonableError) {
  util::Rng rng(8);
  TrafficHarnessConfig config;
  config.epochs = 4;
  config.train_samples = 40;
  config.eval_samples = 20;
  TrafficTaskHarness harness(dataset_, config);
  StNorm model(dataset_, config.window, data::kTrafficChannels,
               1 * data::kTrafficChannels, 24, &rng);
  auto metrics = harness.TrainAndEvalPrediction(&model, 1);
  // Speeds are ~4-20 m/s; a trained model must beat a 6 m/s error.
  EXPECT_LT(metrics.mae, 6.0);
  EXPECT_GT(metrics.mae, 0.0);
}

TEST_F(BaselinesTest, TrafficImputationHarness) {
  util::Rng rng(9);
  TrafficHarnessConfig config;
  config.epochs = 2;
  config.train_samples = 20;
  config.eval_samples = 10;
  TrafficTaskHarness harness(dataset_, config);
  Sstban model(dataset_, config.window, data::kTrafficChannels + 1,
               config.window * data::kTrafficChannels, 16, &rng);
  auto metrics = harness.TrainAndEvalImputation(&model, 0.25);
  EXPECT_LT(metrics.mae, 8.0);
}

// --- Recovery -----------------------------------------------------------------

TEST_F(BaselinesTest, HmmRecoveryBeatsRandom) {
  LinearHmmRecovery linear(dataset_);
  DthrHmmRecovery dthr(dataset_);
  util::Rng rng(10);
  int correct_linear = 0, correct_dthr = 0, total = 0;
  for (const auto& trip : dataset_->test()) {
    if (trip.length() < 8 || total > 60) continue;
    auto kept = data::DownsampleKeepIndices(trip.length(), 0.5, &rng);
    auto dropped = data::ComplementIndices(trip.length(), kept);
    if (dropped.empty()) continue;
    auto pred_linear = linear.Recover(trip, kept);
    auto pred_dthr = dthr.Recover(trip, kept);
    ASSERT_EQ(pred_linear.size(), dropped.size());
    ASSERT_EQ(pred_dthr.size(), dropped.size());
    for (size_t k = 0; k < dropped.size(); ++k) {
      const int truth =
          trip.points[static_cast<size_t>(dropped[k])].segment;
      correct_linear += pred_linear[k] == truth ? 1 : 0;
      correct_dthr += pred_dthr[k] == truth ? 1 : 0;
      ++total;
    }
  }
  ASSERT_GT(total, 20);
  const double random = 1.0 / dataset_->network().num_segments();
  EXPECT_GT(static_cast<double>(correct_linear) / total, 3 * random);
  EXPECT_GT(static_cast<double>(correct_dthr) / total, 3 * random);
}

TEST_F(BaselinesTest, NeuralRecoveryTrainsAndPredicts) {
  util::Rng rng(11);
  MTrajRec model(dataset_, 16, &rng);
  std::vector<data::Trajectory> corpus(dataset_->train().begin(),
                                       dataset_->train().begin() + 40);
  model.Train(corpus, 0.5);
  const auto& trip = AnyTrajectory(8);
  auto kept = data::DownsampleKeepIndices(trip.length(), 0.5, &rng);
  auto dropped = data::ComplementIndices(trip.length(), kept);
  auto predicted = model.Recover(trip, kept);
  EXPECT_EQ(predicted.size(), dropped.size());
  for (int p : predicted) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, dataset_->network().num_segments());
  }
}

TEST_F(BaselinesTest, RnTrajRecForward) {
  util::Rng rng(12);
  RnTrajRec model(dataset_, 16, &rng);
  const auto& trip = AnyTrajectory(8);
  auto kept = data::DownsampleKeepIndices(trip.length(), 0.6, &rng);
  auto dropped = data::ComplementIndices(trip.length(), kept);
  if (dropped.empty()) GTEST_SKIP();
  auto predicted = model.Recover(trip, kept);
  EXPECT_EQ(predicted.size(), dropped.size());
}

// --- Classic similarity ---------------------------------------------------------

TEST(ClassicSimilarityTest, IdentityProperties) {
  std::vector<std::pair<float, float>> a = {{0, 0}, {100, 0}, {200, 0}};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(FrechetDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(EdrDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(LcssSimilarity(a, a), 1.0);
}

TEST(ClassicSimilarityTest, Symmetry) {
  std::vector<std::pair<float, float>> a = {{0, 0}, {100, 50}, {250, 80}};
  std::vector<std::pair<float, float>> b = {{10, 10}, {90, 60}};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
  EXPECT_DOUBLE_EQ(FrechetDistance(a, b), FrechetDistance(b, a));
  EXPECT_DOUBLE_EQ(EdrDistance(a, b), EdrDistance(b, a));
  EXPECT_DOUBLE_EQ(LcssSimilarity(a, b), LcssSimilarity(b, a));
}

TEST(ClassicSimilarityTest, FartherIsLarger) {
  std::vector<std::pair<float, float>> a = {{0, 0}, {100, 0}};
  std::vector<std::pair<float, float>> near = {{0, 10}, {100, 10}};
  std::vector<std::pair<float, float>> far = {{0, 1000}, {100, 1000}};
  EXPECT_LT(DtwDistance(a, near), DtwDistance(a, far));
  EXPECT_LT(FrechetDistance(a, near), FrechetDistance(a, far));
  EXPECT_GT(LcssSimilarity(a, near), LcssSimilarity(a, far));
  EXPECT_LE(EdrDistance(a, near), EdrDistance(a, far));
}

TEST(ClassicSimilarityTest, AllMeasuresRankSelfFirst) {
  std::vector<std::pair<float, float>> self = {{0, 0}, {50, 50}, {100, 80}};
  std::vector<std::pair<float, float>> other = {{500, 900}, {700, 1000}};
  for (const auto& measure : AllClassicMeasures()) {
    EXPECT_GT(measure.similarity(self, self),
              measure.similarity(self, other))
        << measure.name;
  }
}

TEST_F(BaselinesTest, ToPointSequenceMatchesSegments) {
  const auto& trip = AnyTrajectory(4);
  auto points = ToPointSequence(dataset_->network(), trip);
  ASSERT_EQ(points.size(), static_cast<size_t>(trip.length()));
  const auto& first = dataset_->network().segment(trip.points[0].segment);
  EXPECT_FLOAT_EQ(points[0].first, first.mid_x);
  EXPECT_FLOAT_EQ(points[0].second, first.mid_y);
}

}  // namespace
}  // namespace bigcity::baselines
