// Integration tests: the full two-stage training pipeline on a tiny city,
// followed by evaluation of all eight tasks and the transfer protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "core/bigcity_model.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "train/transfer.h"
#include "util/fault_injection.h"

namespace bigcity::train {
namespace {

data::CityDatasetConfig TinyCity(const char* name, uint64_t seed) {
  auto config = data::ScaleConfig(data::XianLikeConfig(), 0.15);
  config.name = name;
  config.city.grid_width = 5;
  config.city.grid_height = 5;
  config.city.seed = seed;
  config.generator.seed = seed + 1;
  config.generator.num_users = 8;
  return config;
}

core::BigCityConfig TinyModelConfig() {
  core::BigCityConfig config;
  config.d_model = 32;
  config.num_heads = 2;
  config.num_layers = 1;
  config.spatial_dim = 16;
  config.gat_hidden = 16;
  config.lora_rank = 4;
  return config;
}

TrainConfig QuickTrainConfig() {
  TrainConfig config;
  config.pretrain_lm_epochs = 3;
  config.stage1_epochs = 2;
  config.stage2_epochs = 4;
  config.max_stage1_sequences = 80;
  config.max_task_samples = 60;
  return config;
}

class TrainPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::CityDataset(TinyCity("XA-tiny", 900));
    model_ = new core::BigCityModel(dataset_, TinyModelConfig());
    trainer_ = new Trainer(model_, QuickTrainConfig());
    ASSERT_TRUE(trainer_->RunAll().ok());
  }
  static void TearDownTestSuite() {
    delete trainer_;
    delete model_;
    delete dataset_;
  }

  static data::CityDataset* dataset_;
  static core::BigCityModel* model_;
  static Trainer* trainer_;
};

data::CityDataset* TrainPipelineTest::dataset_ = nullptr;
core::BigCityModel* TrainPipelineTest::model_ = nullptr;
Trainer* TrainPipelineTest::trainer_ = nullptr;

TEST_F(TrainPipelineTest, LossesAreFinite) {
  EXPECT_TRUE(std::isfinite(trainer_->last_stage1_loss()));
  EXPECT_TRUE(std::isfinite(trainer_->last_stage2_loss()));
  EXPECT_GT(trainer_->last_stage1_loss(), 0.0f);
}

TEST_F(TrainPipelineTest, Stage2FreezesTokenizer) {
  // After RunAll, tokenizer params must be frozen; LoRA + heads trainable.
  for (auto& p : model_->tokenizer()->Parameters()) {
    EXPECT_FALSE(p.requires_grad());
  }
  EXPECT_FALSE(model_->TrainableParameters().empty());
}

TEST_F(TrainPipelineTest, NextHopBeatsUniformRandom) {
  Evaluator evaluator(model_);
  RankingMetrics metrics = evaluator.EvaluateNextHop();
  // Even a briefly trained model must beat random over ~100 segments,
  // because next-hop candidates are network-constrained.
  const double random = 1.0 / dataset_->network().num_segments();
  EXPECT_GT(metrics.accuracy, 5 * random);
  EXPECT_GE(metrics.mrr5, metrics.accuracy);
  EXPECT_GE(metrics.ndcg5, metrics.mrr5 - 1e-9);
}

TEST_F(TrainPipelineTest, TravelTimeFinitePositive) {
  Evaluator evaluator(model_);
  RegressionMetrics metrics = evaluator.EvaluateTravelTime();
  EXPECT_GT(metrics.mae, 0.0);
  EXPECT_GE(metrics.rmse, metrics.mae);
  EXPECT_TRUE(std::isfinite(metrics.mape));
}

TEST_F(TrainPipelineTest, UserClassificationRuns) {
  Evaluator evaluator(model_);
  MultiClassMetrics metrics = evaluator.EvaluateUserClassification();
  EXPECT_GE(metrics.micro_f1, 0.0);
  EXPECT_LE(metrics.micro_f1, 1.0);
}

TEST_F(TrainPipelineTest, SimilaritySearchRanksOwnHalfHighly) {
  Evaluator evaluator(model_);
  SimilarityMetrics metrics = evaluator.EvaluateSimilarity();
  // Queries share half their ST-units with the positive; embeddings should
  // beat random ranking by a wide margin.
  EXPECT_GT(metrics.hr10, 0.2);
  EXPECT_GE(metrics.hr10, metrics.hr5);
  EXPECT_GE(metrics.hr5, metrics.hr1);
}

TEST_F(TrainPipelineTest, RecoveryDegradesWithMaskRatio) {
  Evaluator evaluator(model_);
  RecoveryMetrics easy = evaluator.EvaluateRecovery(0.5);
  RecoveryMetrics hard = evaluator.EvaluateRecovery(0.95);
  EXPECT_GE(easy.accuracy, 0.0);
  // Generally easier with fewer masks; allow slack for a tiny model.
  EXPECT_GE(easy.accuracy + 0.15, hard.accuracy);
}

TEST_F(TrainPipelineTest, TrafficTasksProduceSaneErrors) {
  Evaluator evaluator(model_);
  RegressionMetrics one = evaluator.EvaluateTrafficPrediction(1);
  RegressionMetrics multi = evaluator.EvaluateTrafficPrediction(6);
  RegressionMetrics imputed = evaluator.EvaluateTrafficImputation(0.25);
  // Errors in m/s: must be far below the 20 m/s normalization scale.
  EXPECT_LT(one.mae, 8.0);
  EXPECT_LT(multi.mae, 8.0);
  EXPECT_LT(imputed.mae, 8.0);
  EXPECT_GT(one.mae, 0.0);
}

TEST_F(TrainPipelineTest, TransferKeepsBackboneFrozen) {
  data::CityDataset target_data(TinyCity("CD-tiny", 1900));
  core::BigCityModel target(&target_data, TinyModelConfig());
  util::Rng rng(1);
  target.backbone()->EnableLora(&rng);  // Match source architecture.
  TransferBackbone(model_, &target);
  for (auto& p : target.backbone()->Parameters()) {
    EXPECT_FALSE(p.requires_grad());
  }
  // Trainable: tokenizer temporal MLP + heads only.
  auto trainable = target.TrainableParameters();
  EXPECT_FALSE(trainable.empty());
  auto quick = QuickTrainConfig();
  quick.max_task_samples = 8;
  FineTuneTransferred(&target, quick);
  Evaluator evaluator(&target);
  RankingMetrics metrics = evaluator.EvaluateNextHop();
  EXPECT_GE(metrics.accuracy, 0.0);
}

TEST(TrainerTest, BuildTaskSamplesCoversConfiguredTasks) {
  data::CityDataset dataset(TinyCity("XA-samples", 300));
  core::BigCityModel model(&dataset, TinyModelConfig());
  TrainConfig config = QuickTrainConfig();
  config.tasks = {core::Task::kNextHop, core::Task::kTrafficMultiStep};
  Trainer trainer(&model, config);
  auto samples = trainer.BuildTaskSamples();
  bool has_next = false, has_multi = false, has_other = false;
  for (const auto& s : samples) {
    if (s.task == core::Task::kNextHop) has_next = true;
    else if (s.task == core::Task::kTrafficMultiStep) has_multi = true;
    else has_other = true;
  }
  EXPECT_TRUE(has_next);
  EXPECT_TRUE(has_multi);
  EXPECT_FALSE(has_other);
}

TEST(TrainerTest, PretrainReducesLmLoss) {
  data::CityDataset dataset(TinyCity("XA-lm", 301));
  core::BigCityModel model(&dataset, TinyModelConfig());
  auto corpus_loss = [&]() {
    float total = 0;
    int count = 0;
    for (const auto& line : PretrainCorpus()) {
      auto ids = model.text_tokenizer().Encode(line);
      if (ids.size() < 2) continue;
      nn::Tensor logits = model.backbone()->TextLmLogits(ids);
      nn::Tensor inputs = nn::SliceRows(
          logits, 0, static_cast<int64_t>(ids.size()) - 1);
      std::vector<int> targets(ids.begin() + 1, ids.end());
      total += nn::CrossEntropy(inputs, targets).item();
      ++count;
    }
    return total / count;
  };
  const float before = corpus_loss();
  TrainConfig config = QuickTrainConfig();
  config.pretrain_lm_epochs = 5;
  Trainer trainer(&model, config);
  ASSERT_TRUE(trainer.PretrainBackbone().ok());
  const float after = corpus_loss();
  EXPECT_LT(after, before);
}

// ---------------------------------------------------------------------------
// Resilience: crash-safe checkpointing, resume, and non-finite guards.

/// Small-but-complete pipeline config so resume crosses every phase quickly.
TrainConfig ResilienceConfig(const std::string& checkpoint_dir = "") {
  TrainConfig config;
  config.pretrain_lm_epochs = 2;
  config.stage1_epochs = 2;
  config.stage2_epochs = 2;
  config.max_stage1_sequences = 40;
  config.max_task_samples = 16;
  config.checkpoint_dir = checkpoint_dir;
  return config;
}

std::string ResilienceDir(const char* leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

TEST(ResilienceTest, InterruptedRunResumesBitIdentical) {
  const std::string dir = ResilienceDir("bigcity_resume_test");
  const std::string snapshot = dir + "/train_state.ckpt";

  // Reference run: never interrupted, no checkpointing.
  data::CityDataset dataset(TinyCity("XA-resume", 77));
  core::BigCityModel reference(&dataset, TinyModelConfig());
  Trainer reference_trainer(&reference, ResilienceConfig());
  ASSERT_TRUE(reference_trainer.RunAll().ok());
  const auto expected = reference.NamedParameters();

  // Six epoch boundaries total (2 per phase); kill at one in each phase.
  for (const int interrupt_after : {1, 3, 5}) {
    std::filesystem::remove_all(dir);
    core::BigCityModel victim(&dataset, TinyModelConfig());
    Trainer victim_trainer(&victim, ResilienceConfig(dir));
    {
      util::ScopedFault interrupt(util::kFaultTrainerInterrupt,
                                  /*skip=*/interrupt_after - 1);
      const util::Status status = victim_trainer.RunAll();
      ASSERT_FALSE(status.ok()) << "boundary " << interrupt_after;
      EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
    }

    // Brand-new model and trainer, as after a process restart.
    core::BigCityModel resumed(&dataset, TinyModelConfig());
    Trainer resumed_trainer(&resumed, ResilienceConfig(dir));
    ASSERT_TRUE(resumed_trainer.ResumeFrom(snapshot).ok())
        << "boundary " << interrupt_after;
    ASSERT_TRUE(resumed_trainer.RunAll().ok());

    const auto actual = resumed.NamedParameters();
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i].first, actual[i].first);
      // Bit-identical, not approximately equal: resume must replay the
      // exact optimizer, RNG, and schedule state of the original run.
      ASSERT_EQ(expected[i].second.data(), actual[i].second.data())
          << expected[i].first << " after boundary " << interrupt_after;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ResilienceTest, ResumeRejectsCorruptedSnapshot) {
  const std::string dir = ResilienceDir("bigcity_corrupt_resume_test");
  std::filesystem::remove_all(dir);
  const std::string snapshot = dir + "/train_state.ckpt";
  data::CityDataset dataset(TinyCity("XA-corrupt", 78));
  {
    core::BigCityModel model(&dataset, TinyModelConfig());
    TrainConfig config = ResilienceConfig(dir);
    config.stage1_epochs = 0;
    config.stage2_epochs = 0;
    Trainer trainer(&model, config);
    ASSERT_TRUE(trainer.PretrainBackbone().ok());
    ASSERT_TRUE(std::filesystem::exists(snapshot));
  }
  // Truncate the snapshot; resume must fail loudly, never abort.
  const auto size = std::filesystem::file_size(snapshot);
  std::filesystem::resize_file(snapshot, size / 2);
  core::BigCityModel model(&dataset, TinyModelConfig());
  Trainer trainer(&model, ResilienceConfig(dir));
  const util::Status status = trainer.ResumeFrom(snapshot);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.message().empty());
  std::filesystem::remove_all(dir);
}

TEST(ResilienceTest, NanGradientStepSkippedAndRunRecovers) {
  data::CityDataset dataset(TinyCity("XA-nangrad", 123));
  core::BigCityModel model(&dataset, TinyModelConfig());
  Trainer trainer(&model, ResilienceConfig());
  util::ScopedFault nan_grad(util::kFaultTrainerNanGrad, /*skip=*/2,
                             /*count=*/1);
  ASSERT_TRUE(trainer.RunAll().ok());
  EXPECT_EQ(nan_grad.fire_count(), 1);
  EXPECT_EQ(trainer.total_skipped_steps(), 1);
  EXPECT_TRUE(std::isfinite(trainer.last_stage2_loss()));
  for (const auto& [name, parameter] : model.NamedParameters()) {
    for (const float value : parameter.data()) {
      ASSERT_TRUE(std::isfinite(value)) << name;
    }
  }
}

TEST(ResilienceTest, DivergenceRollsBackToLastGoodSnapshot) {
  const std::string dir = ResilienceDir("bigcity_rollback_test");
  std::filesystem::remove_all(dir);
  data::CityDataset dataset(TinyCity("XA-rollback", 124));
  core::BigCityModel model(&dataset, TinyModelConfig());
  TrainConfig config = ResilienceConfig(dir);
  config.pretrain_lm_epochs = 0;  // Snapshot lands at stage-1 entry.
  config.max_bad_steps = 2;
  Trainer trainer(&model, config);
  // Poison the first max_bad_steps stage-1 losses: the trainer declares
  // divergence, reloads the stage-entry snapshot, and the retry succeeds
  // because the fault budget is exhausted.
  util::ScopedFault nan_loss(util::kFaultTrainerNanLoss, /*skip=*/0,
                             /*count=*/2);
  ASSERT_TRUE(trainer.RunAll().ok());
  EXPECT_EQ(nan_loss.fire_count(), 2);
  EXPECT_GE(trainer.rollbacks(), 1);
  EXPECT_TRUE(std::isfinite(trainer.last_stage2_loss()));
  std::filesystem::remove_all(dir);
}

TEST(ResilienceTest, DivergenceWithoutCheckpointDirFailsCleanly) {
  data::CityDataset dataset(TinyCity("XA-diverge", 125));
  core::BigCityModel model(&dataset, TinyModelConfig());
  TrainConfig config = ResilienceConfig();  // No checkpoint_dir.
  config.pretrain_lm_epochs = 0;
  config.max_bad_steps = 2;
  Trainer trainer(&model, config);
  util::ScopedFault nan_loss(util::kFaultTrainerNanLoss, /*skip=*/0,
                             /*count=*/2);
  const util::Status status = trainer.RunAll();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("diverged"), std::string::npos);
}

TEST(ResilienceTest, TornCheckpointWriteSurfacesErrorAndKeepsOldSnapshot) {
  const std::string dir = ResilienceDir("bigcity_torn_snapshot_test");
  std::filesystem::remove_all(dir);
  const std::string snapshot = dir + "/train_state.ckpt";
  data::CityDataset dataset(TinyCity("XA-torn", 126));
  core::BigCityModel model(&dataset, TinyModelConfig());
  Trainer trainer(&model, ResilienceConfig(dir));
  {
    // First snapshot commits; the second is torn mid-write.
    util::ScopedFault torn(util::kFaultCheckpointTornWrite, /*skip=*/1,
                           /*count=*/1, /*param=*/16);
    const util::Status status = trainer.RunAll();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(torn.fire_count(), 1);
  }
  // The epoch-1 snapshot survived the torn write and still resumes.
  core::BigCityModel resumed(&dataset, TinyModelConfig());
  Trainer resumed_trainer(&resumed, ResilienceConfig(dir));
  ASSERT_TRUE(resumed_trainer.ResumeFrom(snapshot).ok());
  ASSERT_TRUE(resumed_trainer.RunAll().ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Introspection: training-health telemetry + non-finite localization
// (DESIGN.md §4.10). The records land in the JSONL run report.

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(IntrospectionTest, HealthRecordsCarryPerLayerNorms) {
  const std::string report =
      (std::filesystem::temp_directory_path() / "bigcity_health_report.jsonl")
          .string();
  std::filesystem::remove(report);
  data::CityDataset dataset(TinyCity("XA-health", 222));
  core::BigCityModel model(&dataset, TinyModelConfig());
  TrainConfig config = ResilienceConfig();
  config.pretrain_lm_epochs = 1;
  config.stage1_epochs = 1;
  config.stage2_epochs = 0;
  config.run_report_path = report;
  config.health_every_steps = 5;
  config.health_top_layers = 4;
  Trainer trainer(&model, config);
  ASSERT_TRUE(trainer.RunAll().ok());
  const std::string contents = ReadWholeFile(report);
  EXPECT_NE(contents.find("\"event\":\"health\""), std::string::npos);
  EXPECT_NE(contents.find("\"grad_norm\""), std::string::npos);
  EXPECT_NE(contents.find("\"weight_norm\""), std::string::npos);
  EXPECT_NE(contents.find("\"update_ratio\""), std::string::npos);
  // Layer keys are NamedParameters() prefixes; the embedding trains during
  // pretraining, so its module should show up in some record.
  EXPECT_NE(contents.find("backbone."), std::string::npos);
  std::filesystem::remove(report);
}

TEST(IntrospectionTest, NanGradGuardTripNamesOffendingModule) {
  const std::string report =
      (std::filesystem::temp_directory_path() / "bigcity_nonfinite.jsonl")
          .string();
  std::filesystem::remove(report);
  data::CityDataset dataset(TinyCity("XA-nonfinite", 223));
  core::BigCityModel model(&dataset, TinyModelConfig());
  TrainConfig config = ResilienceConfig();
  config.run_report_path = report;
  Trainer trainer(&model, config);
  util::ScopedFault nan_grad(util::kFaultTrainerNanGrad, /*skip=*/2,
                             /*count=*/1);
  ASSERT_TRUE(trainer.RunAll().ok());
  EXPECT_EQ(nan_grad.fire_count(), 1);

  // Exactly the tripped step produced a nonfinite record, with kind
  // "grad" and a non-empty module path naming the poisoned layer.
  const std::string contents = ReadWholeFile(report);
  const auto at = contents.find("\"event\":\"nonfinite\"");
  ASSERT_NE(at, std::string::npos);
  const auto line_end = contents.find('\n', at);
  const std::string line = contents.substr(at, line_end - at);
  EXPECT_NE(line.find("\"kind\":\"grad\""), std::string::npos);
  EXPECT_NE(line.find("\"found\":1"), std::string::npos);
  EXPECT_NE(line.find("\"in_grad\":1"), std::string::npos);
  EXPECT_EQ(line.find("\"module\":\"\""), std::string::npos)
      << "nonfinite record must name the offending module: " << line;
  std::filesystem::remove(report);
}

TEST(IntrospectionTest, EpochRecordsEmitPerEpochDeltas) {
  const std::string report =
      (std::filesystem::temp_directory_path() / "bigcity_delta_report.jsonl")
          .string();
  std::filesystem::remove(report);
  const std::string dir = ResilienceDir("bigcity_delta_ckpt");
  std::filesystem::remove_all(dir);
  data::CityDataset dataset(TinyCity("XA-deltas", 224));
  core::BigCityModel model(&dataset, TinyModelConfig());
  TrainConfig config = ResilienceConfig(dir);
  config.run_report_path = report;
  Trainer trainer(&model, config);
  ASSERT_TRUE(trainer.RunAll().ok());

  // Each record reports the snapshots committed since the previous record:
  // 0, 1, or 2 (an end-of-epoch write plus possibly a phase-boundary one).
  // Cumulative-since-construction reporting would grow monotonically past
  // 2 by the fourth epoch. The deltas over all records plus the two writes
  // after the last record (final epoch + phase end) equal the total.
  std::ifstream in(report);
  std::string line;
  int epoch_records = 0;
  int64_t delta_sum = 0;
  while (std::getline(in, line)) {
    if (line.find("\"event\":\"epoch\"") == std::string::npos) continue;
    ++epoch_records;
    const auto key = line.find("\"checkpoint_writes\":");
    ASSERT_NE(key, std::string::npos) << line;
    const int64_t delta =
        std::atoll(line.c_str() + key + sizeof("\"checkpoint_writes\":") - 1);
    EXPECT_LE(delta, 2) << line;
    delta_sum += delta;
    EXPECT_NE(line.find("\"guard_skipped_steps\":0,"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"mem_peak_bytes\""), std::string::npos) << line;
  }
  EXPECT_GE(epoch_records, 4);
  EXPECT_EQ(delta_sum, trainer.checkpoint_writes() - 2);
  // The summary keeps cumulative totals and the queue-wait percentiles.
  const std::string contents = ReadWholeFile(report);
  EXPECT_NE(contents.find("\"queue_wait_p95_us\""), std::string::npos);
  EXPECT_NE(contents.find("\"applied_steps\""), std::string::npos);
  std::filesystem::remove(report);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bigcity::train
