#include "data/csv_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/dataset.h"

namespace bigcity::data {
namespace {

std::vector<Trajectory> SampleTrips() {
  Trajectory a;
  a.user_id = 3;
  a.pattern_label = 1;
  a.points = {{10, 100.0}, {11, 130.5}, {12, 190.25}};
  Trajectory b;
  b.user_id = 7;
  b.points = {{5, 50.0}, {6, 80.0}};
  return {a, b};
}

TEST(TrajectoryCsvTest, RoundTrip) {
  auto trips = SampleTrips();
  std::stringstream stream;
  WriteTrajectoriesCsv(stream, trips);
  auto loaded = ReadTrajectoriesCsv(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].user_id, 3);
  EXPECT_EQ(loaded.value()[0].pattern_label, 1);
  ASSERT_EQ(loaded.value()[0].length(), 3);
  EXPECT_EQ(loaded.value()[0].points[1].segment, 11);
  EXPECT_DOUBLE_EQ(loaded.value()[0].points[1].timestamp, 130.5);
  EXPECT_EQ(loaded.value()[1].length(), 2);
}

TEST(TrajectoryCsvTest, RejectsMissingHeader) {
  std::stringstream stream("1,2,3,4,5\n");
  EXPECT_FALSE(ReadTrajectoriesCsv(stream).ok());
}

TEST(TrajectoryCsvTest, RejectsBadFieldCount) {
  std::stringstream stream(
      "trip_id,user_id,pattern_label,segment,timestamp\n0,1,0,5\n");
  EXPECT_FALSE(ReadTrajectoriesCsv(stream).ok());
}

TEST(TrajectoryCsvTest, RejectsNonMonotoneTimestamps) {
  std::stringstream stream(
      "trip_id,user_id,pattern_label,segment,timestamp\n"
      "0,1,0,5,100\n0,1,0,6,90\n");
  EXPECT_FALSE(ReadTrajectoriesCsv(stream).ok());
}

TEST(TrajectoryCsvTest, RejectsNonDenseTripIds) {
  std::stringstream stream(
      "trip_id,user_id,pattern_label,segment,timestamp\n"
      "5,1,0,5,100\n");
  EXPECT_FALSE(ReadTrajectoriesCsv(stream).ok());
}

TEST(TrajectoryCsvTest, RejectsGarbageNumbers) {
  std::stringstream stream(
      "trip_id,user_id,pattern_label,segment,timestamp\n"
      "0,1,0,abc,100\n");
  EXPECT_FALSE(ReadTrajectoriesCsv(stream).ok());
}

TEST(TrafficCsvTest, RoundTrip) {
  TrafficStateSeries series(3, 2, 1800.0);
  series.Set(1, 0, 0, 0.5f);
  series.Set(2, 1, 1, 0.25f);
  std::stringstream stream;
  WriteTrafficCsv(stream, series);
  auto loaded = ReadTrafficCsv(stream, 1800.0);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_slices(), 3);
  EXPECT_EQ(loaded.value().num_segments(), 2);
  EXPECT_FLOAT_EQ(loaded.value().Get(1, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(loaded.value().Get(2, 1, 1), 0.25f);
}

TEST(TrafficCsvTest, RejectsEmpty) {
  std::stringstream stream("slice,segment,speed,flow\n");
  EXPECT_FALSE(ReadTrafficCsv(stream, 1800.0).ok());
}

TEST(CsvFileTest, SaveLoadGeneratedDataset) {
  auto config = ScaleConfig(XianLikeConfig(), 0.05);
  config.city.grid_width = 4;
  config.city.grid_height = 4;
  CityDataset dataset(config);
  const std::string path = "/tmp/bigcity_csv_test.csv";
  ASSERT_TRUE(SaveTrajectoriesCsv(path, dataset.train()).ok());
  auto loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), dataset.train().size());
  for (size_t t = 0; t < loaded.value().size(); ++t) {
    ASSERT_EQ(loaded.value()[t].length(), dataset.train()[t].length());
    for (int l = 0; l < loaded.value()[t].length(); ++l) {
      EXPECT_EQ(loaded.value()[t].points[static_cast<size_t>(l)].segment,
                dataset.train()[t].points[static_cast<size_t>(l)].segment);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  auto loaded = LoadTrajectoriesCsv("/nonexistent/file.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace bigcity::data
