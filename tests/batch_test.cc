#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "core/bigcity_model.h"
#include "core/st_tokenizer.h"
#include "data/dataset.h"
#include "nn/tensor.h"
#include "nn/transformer.h"
#include "obs/metrics.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"
#include "serve/server.h"
#include "util/fault_injection.h"

namespace bigcity::serve {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

/// Exact float comparison down to the bit pattern: the batched, KV-cached,
/// and shared-cache paths must not perturb the numerics at all.
void ExpectBitIdentical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_TRUE(a.is_valid());
  ASSERT_TRUE(b.is_valid());
  ASSERT_EQ(a.shape(), b.shape());
  const auto& da = a.data();
  const auto& db = b.data();
  ASSERT_EQ(da.size(), db.size());
  EXPECT_EQ(std::memcmp(da.data(), db.data(), da.size() * sizeof(float)), 0);
}

/// Tiny dataset + model shared by the suite (same footprint as ServeTest).
class BatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = data::ScaleConfig(data::XianLikeConfig(), 0.1);
    config.city.grid_width = 5;
    config.city.grid_height = 5;
    dataset_ = new data::CityDataset(config);
    model_config_.d_model = 32;
    model_config_.num_heads = 2;
    model_config_.num_layers = 2;
    model_config_.spatial_dim = 16;
    model_config_.gat_hidden = 16;
    model_ = new core::BigCityModel(dataset_, model_config_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }
  void TearDown() override { util::FaultInjection::DisarmAll(); }

  static const data::Trajectory& AnyTrajectory(int min_len = 6) {
    for (const auto& t : dataset_->train()) {
      if (t.length() >= min_len) return t;
    }
    return dataset_->train().front();
  }

  static data::Trajectory Prefix(const data::Trajectory& trajectory,
                                 int length) {
    data::Trajectory prefix = trajectory;
    prefix.points.resize(static_cast<size_t>(length));
    return prefix;
  }

  /// A few trajectories of different lengths (ragged batch members).
  static std::vector<data::Trajectory> RaggedTrajectories(int count) {
    const data::Trajectory& full = AnyTrajectory();
    // Capped well under max_trajectory_tokens so the server's clipping is
    // a no-op and direct model calls on the same prefixes are comparable.
    const int cap = std::min(full.length(), 10);
    std::vector<data::Trajectory> out;
    for (int i = 0; i < count; ++i) {
      out.push_back(Prefix(full, 2 + (i % (cap - 1))));
    }
    return out;
  }

  static data::CityDataset* dataset_;
  static core::BigCityConfig model_config_;
  static core::BigCityModel* model_;
};

data::CityDataset* BatchTest::dataset_ = nullptr;
core::BigCityConfig BatchTest::model_config_;
core::BigCityModel* BatchTest::model_ = nullptr;

// --- Batched forward bit-identity (model level) -----------------------------

TEST_F(BatchTest, BatchNextHopBitIdenticalAcrossSizes) {
  for (int size : {1, 2, 3, 5}) {
    SCOPED_TRACE(size);
    std::vector<data::Trajectory> prefixes = RaggedTrajectories(size);
    std::vector<nn::Tensor> batched = model_->BatchNextHopLogits(prefixes);
    ASSERT_EQ(batched.size(), prefixes.size());
    for (int i = 0; i < size; ++i) {
      ExpectBitIdentical(batched[static_cast<size_t>(i)],
                         model_->NextHopLogits(prefixes[static_cast<size_t>(i)]));
    }
  }
}

TEST_F(BatchTest, BatchTravelTimeBitIdentical) {
  std::vector<data::Trajectory> trajectories = RaggedTrajectories(4);
  std::vector<nn::Tensor> batched =
      model_->BatchTravelTimeDeltas(trajectories);
  ASSERT_EQ(batched.size(), trajectories.size());
  for (size_t i = 0; i < trajectories.size(); ++i) {
    ExpectBitIdentical(batched[i], model_->TravelTimeDeltas(trajectories[i]));
  }
}

TEST_F(BatchTest, BatchPredictTrafficBitIdentical) {
  std::vector<core::BigCityModel::TrafficQuery> queries = {
      {0, 0, 1}, {1, 0, 3}, {2, 1, 2}, {0, 2, 1}};
  util::Result<std::vector<nn::Tensor>> batched =
      model_->TryBatchPredictTraffic(queries);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectBitIdentical(batched.value()[i],
                       model_->PredictTraffic(queries[i].segment,
                                              queries[i].start_slice,
                                              queries[i].horizon));
  }
}

TEST_F(BatchTest, TryBatchRejectsBatchWithInvalidMember) {
  std::vector<data::Trajectory> prefixes = RaggedTrajectories(2);
  prefixes.push_back(data::Trajectory{});  // Empty: fails screening.
  util::Result<std::vector<nn::Tensor>> result =
      model_->TryBatchNextHopLogits(prefixes);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

// --- KV-cached incremental decoding -----------------------------------------

TEST_F(BatchTest, KvCachedNextHopBitIdenticalAcrossExtensions) {
  nn::NoGradGuard no_grad;  // Serving mode, like the workers.
  const data::Trajectory& full = AnyTrajectory(6);
  const int max_len = std::min(full.length(), 8);
  nn::KvCache cache;
  std::vector<int64_t> lengths;
  for (int len = 2; len <= max_len; ++len) {
    SCOPED_TRACE(len);
    data::Trajectory prefix = Prefix(full, len);
    nn::Tensor cached = model_->NextHopLogitsCached(prefix, &cache);
    ExpectBitIdentical(cached, model_->NextHopLogits(prefix));
    lengths.push_back(cache.length());
  }
  // Each extension step adds exactly one reusable row to the cache: the
  // shared prefix grew by one ST token (the [CLAS] row is re-decoded).
  for (size_t i = 1; i < lengths.size(); ++i) {
    EXPECT_EQ(lengths[i], lengths[i - 1] + 1);
  }
}

TEST_F(BatchTest, KvCacheColdStartMatchesFullForward) {
  nn::NoGradGuard no_grad;
  const data::Trajectory prefix = Prefix(AnyTrajectory(4), 3);
  nn::KvCache cache;
  nn::Tensor first = model_->NextHopLogitsCached(prefix, &cache);
  EXPECT_GT(cache.length(), 0);
  ExpectBitIdentical(first, model_->NextHopLogits(prefix));
  // Re-serving the same prefix truncates and re-decodes the final rows —
  // still bit-identical.
  nn::Tensor again = model_->NextHopLogitsCached(prefix, &cache);
  ExpectBitIdentical(again, first);
}

TEST_F(BatchTest, BatchedCachedDecodeMixedBatchBitIdentical) {
  nn::NoGradGuard no_grad;
  const data::Trajectory& full = AnyTrajectory(8);
  const int max_len = std::min(full.length(), 8);
  ASSERT_GE(max_len, 8);
  // Warm two caches at different served lengths through a batched prefill.
  std::vector<data::Trajectory> warm = {Prefix(full, 3), Prefix(full, 5)};
  nn::KvCache cache_a, cache_b;
  std::vector<nn::KvCache*> warm_caches = {&cache_a, &cache_b};
  std::vector<nn::Tensor> prefill =
      model_->BatchNextHopLogits(warm, &warm_caches);
  for (size_t i = 0; i < warm.size(); ++i) {
    ExpectBitIdentical(prefill[i], model_->NextHopLogits(warm[i]));
  }
  const int64_t warm_a = cache_a.length();
  const int64_t warm_b = cache_b.length();
  EXPECT_GT(warm_a, 0);
  EXPECT_GT(warm_b, 0);
  // Mixed batch: a one-step extension, a multi-step (5 -> 8) extension,
  // and a fresh member prefilling a third cache — all in one forward.
  std::vector<data::Trajectory> next = {Prefix(full, 4), Prefix(full, 8),
                                        Prefix(full, 2)};
  nn::KvCache cache_c;
  std::vector<nn::KvCache*> caches = {&cache_a, &cache_b, &cache_c};
  std::vector<nn::Tensor> batched = model_->BatchNextHopLogits(next, &caches);
  ASSERT_EQ(batched.size(), next.size());
  for (size_t i = 0; i < next.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectBitIdentical(batched[i], model_->NextHopLogits(next[i]));
  }
  // Extended caches grew to cover their new trajectories; the fresh member
  // captured a full prefill reusable by a later extension.
  EXPECT_GT(cache_a.length(), warm_a);
  EXPECT_GT(cache_b.length(), warm_b);
  EXPECT_GT(cache_c.length(), 0);
  nn::Tensor extended =
      model_->NextHopLogitsCached(Prefix(full, 3), &cache_c);
  ExpectBitIdentical(extended, model_->NextHopLogits(Prefix(full, 3)));
}

// --- Shared tokenizer representation cache ----------------------------------

TEST(SpatialRepCacheTest, VersionKeyedLookupEvictionAndClear) {
  core::SpatialRepCache cache(2);
  nn::Tensor rep = nn::Tensor::FromData({1, 2}, {1.0f, 2.0f});
  EXPECT_FALSE(cache.Get(1, 0).has_value());
  cache.Put(1, 0, rep);
  ASSERT_TRUE(cache.Get(1, 0).has_value());
  ExpectBitIdentical(*cache.Get(1, 0), rep);
  // Hot-swap semantics: a different model version never sees v1 entries.
  EXPECT_FALSE(cache.Get(2, 0).has_value());
  // Capacity 2: inserting a third entry evicts the least recently used.
  cache.Put(1, 1, rep);
  (void)cache.Get(1, 0);  // Touch slice 0 so slice 1 is the LRU victim.
  cache.Put(1, 2, rep);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Get(1, 0).has_value());
  EXPECT_FALSE(cache.Get(1, 1).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST_F(BatchTest, SharedRepCacheWarmsSecondReplicaBitIdentically) {
  core::SpatialRepCache shared(16);
  core::BigCityModel a(dataset_, model_config_);
  core::BigCityModel b(dataset_, model_config_);
  b.CopyStateFrom(a);
  a.tokenizer()->SetSharedRepCache(&shared, /*version=*/7);
  b.tokenizer()->SetSharedRepCache(&shared, /*version=*/7);

  nn::NoGradGuard no_grad;  // Sharing is serving-only.
  const data::Trajectory& trajectory = AnyTrajectory(4);
  nn::Tensor out_a = a.NextHopLogits(trajectory);
  const uint64_t misses_after_a = shared.misses();
  EXPECT_GT(shared.size(), 0u);

  // The second replica reads every slice the first one filled: hits only,
  // and (same weights) a bit-identical output.
  nn::Tensor out_b = b.NextHopLogits(trajectory);
  EXPECT_GT(shared.hits(), 0u);
  EXPECT_EQ(shared.misses(), misses_after_a);
  ExpectBitIdentical(out_a, out_b);
}

TEST_F(BatchTest, SharedRepCacheDistinguishesVersions) {
  core::SpatialRepCache shared(16);
  core::BigCityModel a(dataset_, model_config_);
  core::BigCityModel b(dataset_, model_config_);
  b.CopyStateFrom(a);
  a.tokenizer()->SetSharedRepCache(&shared, /*version=*/1);
  b.tokenizer()->SetSharedRepCache(&shared, /*version=*/2);

  nn::NoGradGuard no_grad;
  const data::Trajectory& trajectory = AnyTrajectory(4);
  (void)a.NextHopLogits(trajectory);
  const uint64_t hits_after_a = shared.hits();
  const uint64_t misses_after_a = shared.misses();
  // A hot-swapped (re-versioned) replica must miss: entries from other
  // weights are invisible to it.
  (void)b.NextHopLogits(trajectory);
  EXPECT_EQ(shared.hits(), hits_after_a);
  EXPECT_GT(shared.misses(), misses_after_a);
}

// --- Batcher dispatch policy ------------------------------------------------

struct FakeItem {
  int key = 0;
  double remaining_us = std::numeric_limits<double>::infinity();
};

Batcher<FakeItem>::Options BatchOptions(int batch_max, double window_us) {
  Batcher<FakeItem>::Options options;
  options.batch_max = batch_max;
  options.window_us = window_us;
  return options;
}

TEST(BatcherTest, FullGroupDispatchesWithoutWaitingForWindow) {
  AdmissionQueue<FakeItem> queue(16);
  Batcher<FakeItem> batcher(
      &queue, BatchOptions(4, /*window_us=*/10e6),
      [](const FakeItem& item) { return item.key; },
      [](const FakeItem& item) { return item.remaining_us; },
      [] { return 1000.0; });
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.TryPush(FakeItem{1}));
  const auto start = std::chrono::steady_clock::now();
  std::vector<FakeItem> batch = batcher.NextBatch();
  const double elapsed_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(elapsed_us, 5e6);  // Far below the 10s window.
}

TEST(BatcherTest, WindowExpiryDispatchesPartialGroup) {
  AdmissionQueue<FakeItem> queue(16);
  Batcher<FakeItem> batcher(
      &queue, BatchOptions(8, /*window_us=*/5000.0),
      [](const FakeItem& item) { return item.key; },
      [](const FakeItem& item) { return item.remaining_us; },
      [] { return 1000.0; });
  ASSERT_TRUE(queue.TryPush(FakeItem{1}));
  ASSERT_TRUE(queue.TryPush(FakeItem{1}));
  std::vector<FakeItem> batch = batcher.NextBatch();
  EXPECT_EQ(batch.size(), 2u);  // Both, once the window lapsed.
}

TEST(BatcherTest, UrgentItemNeverWaitsForBatchFill) {
  AdmissionQueue<FakeItem> queue(16);
  Batcher<FakeItem> batcher(
      &queue, BatchOptions(8, /*window_us=*/10e6),
      [](const FakeItem& item) { return item.key; },
      [](const FakeItem& item) { return item.remaining_us; },
      [] { return 100e3; });  // 100ms urgency margin.
  // One item with only 1ms of budget left: dispatch immediately even
  // though the group is nowhere near batch_max and the window is 10s.
  ASSERT_TRUE(queue.TryPush(FakeItem{1, 1000.0}));
  const auto start = std::chrono::steady_clock::now();
  std::vector<FakeItem> batch = batcher.NextBatch();
  const double elapsed_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LT(elapsed_us, 5e6);
}

TEST(BatcherTest, GroupsNeverMixKeysAndDrainOnClose) {
  AdmissionQueue<FakeItem> queue(16);
  Batcher<FakeItem> batcher(
      &queue, BatchOptions(8, /*window_us=*/10e6),
      [](const FakeItem& item) { return item.key; },
      [](const FakeItem& item) { return item.remaining_us; },
      [] { return 1000.0; });
  ASSERT_TRUE(queue.TryPush(FakeItem{1}));
  ASSERT_TRUE(queue.TryPush(FakeItem{2}));
  ASSERT_TRUE(queue.TryPush(FakeItem{1}));
  queue.Close();  // Closed queue: everything dispatches, still per key.
  std::vector<FakeItem> first = batcher.NextBatch();
  std::vector<FakeItem> second = batcher.NextBatch();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].key, 1);
  EXPECT_EQ(first[1].key, 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].key, 2);
  EXPECT_TRUE(batcher.NextBatch().empty());  // Drained: shutdown signal.
}

TEST(BatcherTest, NegativeKeyDispatchesAloneImmediately) {
  AdmissionQueue<FakeItem> queue(16);
  Batcher<FakeItem> batcher(
      &queue, BatchOptions(8, /*window_us=*/10e6),
      [](const FakeItem& item) { return item.key; },
      [](const FakeItem& item) { return item.remaining_us; },
      [] { return 1000.0; });
  ASSERT_TRUE(queue.TryPush(FakeItem{-1}));
  ASSERT_TRUE(queue.TryPush(FakeItem{-1}));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(batcher.NextBatch().size(), 1u);
  EXPECT_EQ(batcher.NextBatch().size(), 1u);
  const double elapsed_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_LT(elapsed_us, 5e6);
}

// --- Server-level batching --------------------------------------------------

class BatchServeTest : public BatchTest {
 protected:
  static ServeOptions BatchingOptions() {
    ServeOptions options;
    options.num_workers = 1;
    options.queue_capacity = 64;
    options.retry_backoff_ms = 0.1;
    options.batching = true;
    options.batch_max = 8;
    options.batch_window_us = 200.0;
    return options;
  }
};

TEST_F(BatchServeTest, BacklogCoalescesIntoBitIdenticalBatch) {
  InferenceServer server(dataset_, model_config_, BatchingOptions(), model_);
  ASSERT_TRUE(server.Start().ok());

  // Park the single worker on a decoy so a backlog builds behind it; on
  // release the batcher must coalesce the backlog into one forward.
  util::ScopedFault hold(util::kFaultServeWorkerHold, 0, 1, /*param=*/1);
  Request decoy_request;
  decoy_request.task = core::Task::kNextHop;
  decoy_request.trajectory = AnyTrajectory();
  std::future<Response> decoy = server.Submit(decoy_request);
  while (hold.fire_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<data::Trajectory> prefixes = RaggedTrajectories(6);
  std::vector<std::future<Response>> futures;
  for (const data::Trajectory& prefix : prefixes) {
    Request request;
    request.task = core::Task::kNextHop;
    request.trajectory = prefix;
    futures.push_back(server.Submit(request));
  }
  util::FaultInjection::Disarm(util::kFaultServeWorkerHold);
  ASSERT_TRUE(decoy.get().status.ok());

  int max_batch = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    max_batch = std::max(max_batch, response.batch_size);
    ExpectBitIdentical(response.output, model_->NextHopLogits(prefixes[i]));
  }
  // The whole backlog was queued while the worker was parked, so it must
  // have shipped as (at least one) real batch.
  EXPECT_GT(max_batch, 1);
}

TEST_F(BatchServeTest, MixedTaskBacklogBatchesPerTask) {
  InferenceServer server(dataset_, model_config_, BatchingOptions(), model_);
  ASSERT_TRUE(server.Start().ok());

  util::ScopedFault hold(util::kFaultServeWorkerHold, 0, 1, /*param=*/1);
  Request decoy_request;
  decoy_request.task = core::Task::kNextHop;
  decoy_request.trajectory = AnyTrajectory();
  std::future<Response> decoy = server.Submit(decoy_request);
  while (hold.fire_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<data::Trajectory> trajectories = RaggedTrajectories(4);
  std::vector<std::future<Response>> hop_futures;
  std::vector<std::future<Response>> tte_futures;
  for (const data::Trajectory& trajectory : trajectories) {
    Request hop;
    hop.task = core::Task::kNextHop;
    hop.trajectory = trajectory;
    hop_futures.push_back(server.Submit(hop));
    Request tte;
    tte.task = core::Task::kTravelTimeEstimation;
    tte.trajectory = trajectory;
    tte_futures.push_back(server.Submit(tte));
  }
  util::FaultInjection::Disarm(util::kFaultServeWorkerHold);
  ASSERT_TRUE(decoy.get().status.ok());

  for (size_t i = 0; i < trajectories.size(); ++i) {
    Response hop = hop_futures[i].get();
    ASSERT_TRUE(hop.status.ok()) << hop.status.ToString();
    // A batch never mixes tasks, so a next-hop batch holds at most the
    // four next-hop requests.
    EXPECT_LE(hop.batch_size, 4);
    ExpectBitIdentical(hop.output, model_->NextHopLogits(trajectories[i]));
    Response tte = tte_futures[i].get();
    ASSERT_TRUE(tte.status.ok()) << tte.status.ToString();
    EXPECT_LE(tte.batch_size, 4);
    ExpectBitIdentical(tte.output,
                       model_->TravelTimeDeltas(trajectories[i]));
  }
}

TEST_F(BatchServeTest, KvSessionServesExtensionsBitIdentically) {
  ServeOptions options = BatchingOptions();
  InferenceServer server(dataset_, model_config_, options, model_);
  ASSERT_TRUE(server.Start().ok());

  const data::Trajectory& full = AnyTrajectory(6);
  const int max_len = std::min(full.length(), 8);
  const uint64_t hits_before = CounterValue("serve.cache.kv.hit");
  for (int len = 2; len <= max_len; ++len) {
    SCOPED_TRACE(len);
    Request request;
    request.task = core::Task::kNextHop;
    request.trajectory = Prefix(full, len);
    Response response = server.ServeSync(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ExpectBitIdentical(response.output,
                       model_->NextHopLogits(Prefix(full, len)));
  }
#if BIGCITY_OBS
  // Every extension after the first reuses the session's attention state.
  EXPECT_GE(CounterValue("serve.cache.kv.hit"),
            hits_before + static_cast<uint64_t>(max_len - 2));
#else
  (void)hits_before;
#endif
}

TEST_F(BatchServeTest, BatchingOffMatchesBatchingOn) {
  ServeOptions on = BatchingOptions();
  ServeOptions off = BatchingOptions();
  off.batching = false;
  off.kv_sessions = 0;
  off.tokenizer_cache_slices = 0;

  InferenceServer server_on(dataset_, model_config_, on, model_);
  InferenceServer server_off(dataset_, model_config_, off, model_);
  ASSERT_TRUE(server_on.Start().ok());
  ASSERT_TRUE(server_off.Start().ok());

  std::vector<data::Trajectory> prefixes = RaggedTrajectories(5);
  for (const data::Trajectory& prefix : prefixes) {
    Request request;
    request.task = core::Task::kNextHop;
    request.trajectory = prefix;
    Response with = server_on.ServeSync(request);
    Response without = server_off.ServeSync(request);
    ASSERT_TRUE(with.status.ok());
    ASSERT_TRUE(without.status.ok());
    ExpectBitIdentical(with.output, without.output);
  }
}

}  // namespace
}  // namespace bigcity::serve
