// Resilience layer: checkpoint container integrity (magic/version/CRC,
// atomic commit), the fault-injection harness, and optimizer/RNG state
// round trips that crash-safe training resume builds on.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/optim.h"
#include "nn/tensor.h"
#include "util/checkpoint.h"
#include "util/fault_injection.h"
#include "util/io.h"
#include "util/rng.h"

namespace bigcity::util {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Commits a container holding one marker string; returns the path.
std::string CommitMarker(const std::string& name, const std::string& marker) {
  const std::string path = TempPath(name);
  CheckpointWriter writer;
  WriteString(writer.stream(), marker);
  EXPECT_TRUE(writer.Commit(path).ok());
  return path;
}

TEST(Crc32Test, MatchesKnownVector) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SeedChainsPartialComputations) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t first = Crc32(data.data(), 10);
  const uint32_t chained = Crc32(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(whole, chained);
}

TEST(FaultInjectionTest, SkipAndCountSemantics) {
  FaultInjection::DisarmAll();
  FaultInjection::Arm("test.site", /*skip=*/2, /*count=*/2, /*param=*/17);
  EXPECT_EQ(FaultInjection::Param("test.site"), 17);
  EXPECT_FALSE(FaultInjection::Fire("test.site"));  // skipped
  EXPECT_FALSE(FaultInjection::Fire("test.site"));  // skipped
  EXPECT_TRUE(FaultInjection::Fire("test.site"));
  EXPECT_TRUE(FaultInjection::Fire("test.site"));
  EXPECT_FALSE(FaultInjection::Fire("test.site"));  // exhausted
  EXPECT_EQ(FaultInjection::FireCount("test.site"), 2);
  EXPECT_FALSE(FaultInjection::Fire("other.site"));  // never armed
  FaultInjection::DisarmAll();
}

TEST(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("scoped.site");
    EXPECT_TRUE(FaultInjection::Fire("scoped.site"));
    EXPECT_EQ(fault.fire_count(), 1);
  }
  EXPECT_FALSE(FaultInjection::Fire("scoped.site"));
  EXPECT_EQ(FaultInjection::FireCount("scoped.site"), 0);
}

TEST(CheckpointTest, RoundTripPreservesPayload) {
  const std::string path = TempPath("bigcity_ckpt_roundtrip.ckpt");
  CheckpointWriter writer;
  WriteU64(writer.stream(), 42);
  WriteFloatVector(writer.stream(), {1.5f, -2.25f, 0.0f});
  WriteString(writer.stream(), "resilient");
  ASSERT_TRUE(writer.Commit(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.format_version(), kCheckpointFormatVersion);
  uint64_t value = 0;
  std::vector<float> floats;
  std::string text;
  ASSERT_TRUE(ReadU64(reader.stream(), &value).ok());
  ASSERT_TRUE(ReadFloatVector(reader.stream(), &floats).ok());
  ASSERT_TRUE(ReadString(reader.stream(), &text).ok());
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(floats, (std::vector<float>{1.5f, -2.25f, 0.0f}));
  EXPECT_EQ(text, "resilient");
  std::filesystem::remove(path);
}

TEST(CheckpointTest, CommitAtomicallyReplacesExisting) {
  const std::string path = CommitMarker("bigcity_ckpt_replace.ckpt", "v1");
  CheckpointWriter writer;
  WriteString(writer.stream(), "v2");
  ASSERT_TRUE(writer.Commit(path).ok());
  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::string marker;
  ASSERT_TRUE(ReadString(reader.stream(), &marker).ok());
  EXPECT_EQ(marker, "v2");
  std::filesystem::remove(path);
}

TEST(CheckpointTest, MissingFileIsDescriptiveError) {
  CheckpointReader reader;
  const Status status = reader.Open("/nonexistent/dir/state.ckpt");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cannot open"), std::string::npos);
}

TEST(CheckpointTest, BadMagicRejected) {
  const std::string path = TempPath("bigcity_ckpt_badmagic.ckpt");
  WriteFileBytes(path, "XXXXsome bytes that are not a checkpoint at all");
  CheckpointReader reader;
  const Status status = reader.Open(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, UnsupportedVersionRejected) {
  const std::string path =
      CommitMarker("bigcity_ckpt_version.ckpt", "payload");
  std::string bytes = ReadFileBytes(path);
  bytes[4] = 99;  // Format-version field follows the 4-byte magic.
  WriteFileBytes(path, bytes);
  CheckpointReader reader;
  const Status status = reader.Open(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, TruncationRejectedAtEveryBoundary) {
  const std::string path =
      CommitMarker("bigcity_ckpt_trunc.ckpt", "a payload long enough to cut");
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 24u);
  // Mid-magic, mid-header, and mid-payload truncations must all fail.
  for (const size_t keep : {size_t{2}, size_t{10}, bytes.size() - 3}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    CheckpointReader reader;
    const Status status = reader.Open(path);
    const bool descriptive =
        status.message().find("truncated") != std::string::npos ||
        status.message().find("magic") != std::string::npos;
    EXPECT_FALSE(status.ok()) << "kept " << keep << " bytes";
    EXPECT_TRUE(descriptive) << status.message();
  }
  std::filesystem::remove(path);
}

TEST(CheckpointTest, BitFlipOnDiskRejectedByCrc) {
  const std::string path =
      CommitMarker("bigcity_ckpt_bitflip.ckpt", "integrity matters");
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 2] ^= 0x40;  // Inside the payload region.
  WriteFileBytes(path, bytes);
  CheckpointReader reader;
  const Status status = reader.Open(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CRC"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, TrailingBytesRejected) {
  const std::string path =
      CommitMarker("bigcity_ckpt_trailing.ckpt", "payload");
  WriteFileBytes(path, ReadFileBytes(path) + "x");
  CheckpointReader reader;
  EXPECT_FALSE(reader.Open(path).ok());
  std::filesystem::remove(path);
}

TEST(CheckpointTest, TornWriteFaultLeavesDestinationIntact) {
  const std::string path =
      CommitMarker("bigcity_ckpt_torn.ckpt", "good version");
  {
    ScopedFault torn(kFaultCheckpointTornWrite, 0, 1, /*param=*/9);
    CheckpointWriter writer;
    WriteString(writer.stream(), "doomed version");
    const Status status = writer.Commit(path);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(torn.fire_count(), 1);
  }
  // The crash hit the temp file only: the old checkpoint still loads.
  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::string marker;
  ASSERT_TRUE(ReadString(reader.stream(), &marker).ok());
  EXPECT_EQ(marker, "good version");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(CheckpointTest, InjectedBitFlipCaughtOnRead) {
  const std::string path = TempPath("bigcity_ckpt_flipfault.ckpt");
  {
    ScopedFault flip(kFaultCheckpointBitFlip, 0, 1, /*param=*/3);
    CheckpointWriter writer;
    WriteString(writer.stream(), "will be corrupted in flight");
    ASSERT_TRUE(writer.Commit(path).ok());
    EXPECT_EQ(flip.fire_count(), 1);
  }
  CheckpointReader reader;
  const Status status = reader.Open(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CRC"), std::string::npos);
  std::filesystem::remove(path);
}

/// Minimal module for file-level checkpoint tests.
struct TinyModule : nn::Module {
  nn::Tensor w;
  explicit TinyModule(Rng* rng) {
    w = RegisterParameter("w", nn::Tensor::Randn({3, 3}, rng, 1.0f, true));
  }
};

TEST(ModuleCheckpointTest, FileRoundTripThroughContainer) {
  Rng rng(11);
  TinyModule a(&rng);
  TinyModule b(&rng);
  const std::string path = TempPath("bigcity_module_container.ckpt");
  ASSERT_TRUE(a.SaveStateToFile(path).ok());
  ASSERT_TRUE(b.LoadStateFromFile(path).ok());
  EXPECT_EQ(a.w.data(), b.w.data());
  std::filesystem::remove(path);
}

TEST(ModuleCheckpointTest, LegacyRawFileRejectedNotGarbageLoaded) {
  Rng rng(12);
  TinyModule a(&rng);
  const std::string path = TempPath("bigcity_module_legacy.bin");
  {
    // The pre-container format: raw SaveState bytes straight to disk.
    std::ofstream out(path, std::ios::binary);
    a.SaveState(out);
  }
  TinyModule b(&rng);
  const std::vector<float> before(b.w.data().begin(), b.w.data().end());
  const util::Status status = b.LoadStateFromFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
  EXPECT_EQ(b.w.data(), before);  // Untouched on rejection.
  std::filesystem::remove(path);
}

TEST(ModuleCheckpointTest, TruncatedModuleCheckpointRejected) {
  Rng rng(13);
  TinyModule a(&rng);
  const std::string path = TempPath("bigcity_module_trunc.ckpt");
  ASSERT_TRUE(a.SaveStateToFile(path).ok());
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  TinyModule b(&rng);
  EXPECT_FALSE(b.LoadStateFromFile(path).ok());
  std::filesystem::remove(path);
}

TEST(AdamStateTest, RoundTripContinuesBitIdentical) {
  auto make_param = [] {
    return nn::Tensor::FromData({2, 2}, {1.0f, -2.0f, 3.0f, 0.5f}, true);
  };
  auto set_grad = [](nn::Tensor* p, float base) {
    p->grad().assign(4, 0.0f);
    for (int i = 0; i < 4; ++i) p->grad()[static_cast<size_t>(i)] =
        base + static_cast<float>(i);
  };
  nn::Tensor pa = make_param();
  nn::Tensor pb = make_param();
  nn::Adam opt_a({pa}, 0.05f);
  set_grad(&pa, 0.1f);
  opt_a.Step();

  std::stringstream state;
  opt_a.SaveState(state);
  nn::Adam opt_b({pb}, 0.99f);  // Deliberately wrong LR, overwritten below.
  ASSERT_TRUE(opt_b.LoadState(state).ok());
  pb.data() = pa.data();  // Trainer restores parameters separately.
  EXPECT_EQ(opt_b.lr(), opt_a.lr());

  // Identical further steps must produce identical parameters, which only
  // holds if t and both moment buffers were restored exactly.
  for (int step = 0; step < 3; ++step) {
    set_grad(&pa, -0.3f * static_cast<float>(step));
    set_grad(&pb, -0.3f * static_cast<float>(step));
    opt_a.Step();
    opt_b.Step();
    ASSERT_EQ(pa.data(), pb.data()) << "diverged at step " << step;
  }
}

TEST(AdamStateTest, ParameterCountMismatchRejected) {
  nn::Tensor p = nn::Tensor::FromData({2}, {1.0f, 2.0f}, true);
  nn::Tensor q = nn::Tensor::FromData({2}, {1.0f, 2.0f}, true);
  nn::Adam one({p}, 0.1f);
  std::stringstream state;
  one.SaveState(state);
  nn::Adam two({p, q}, 0.1f);
  EXPECT_FALSE(two.LoadState(state).ok());
}

TEST(RngStateTest, SaveLoadReproducesDrawSequence) {
  Rng a(99);
  for (int i = 0; i < 50; ++i) a.UniformInt(0, 1000);
  const std::string state = a.SaveState();
  std::vector<int> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(a.UniformInt(0, 1000));
  Rng b(1);  // Different seed; state restore must override it.
  ASSERT_TRUE(b.LoadState(state));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(b.UniformInt(0, 1000), expected[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(b.LoadState("not an engine state ???"));
}

}  // namespace
}  // namespace bigcity::util
