#include <gtest/gtest.h>

#include "core/bigcity_model.h"
#include "core/st_tokenizer.h"
#include "core/task.h"
#include "core/text_tokenizer.h"
#include "data/dataset.h"
#include "data/masking.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace bigcity::core {
namespace {

// Shared tiny dataset/model fixture: constructing a CityDataset generates
// trajectories and traffic states, so build once for the whole suite.
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = data::ScaleConfig(data::XianLikeConfig(), 0.1);
    config.city.grid_width = 5;
    config.city.grid_height = 5;
    dataset_ = new data::CityDataset(config);
    BigCityConfig model_config;
    model_config.d_model = 32;
    model_config.num_heads = 2;
    model_config.num_layers = 1;
    model_config.spatial_dim = 16;
    model_config.gat_hidden = 16;
    model_ = new BigCityModel(dataset_, model_config);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }
  void SetUp() override { model_->BeginStep(); }

  const data::Trajectory& AnyTrajectory(int min_len = 5) {
    for (const auto& t : dataset_->train()) {
      if (t.length() >= min_len) return t;
    }
    return dataset_->train().front();
  }

  static data::CityDataset* dataset_;
  static BigCityModel* model_;
};

data::CityDataset* CoreTest::dataset_ = nullptr;
BigCityModel* CoreTest::model_ = nullptr;

TEST(TextTokenizerTest, NormalizeLowercasesAndStripsPunctuation) {
  auto words = TextTokenizer::Normalize("Where is, the Next-Hop?");
  EXPECT_EQ(words, (std::vector<std::string>{"where", "is", "the", "next",
                                             "hop"}));
}

TEST(TextTokenizerTest, InstructionsFullyInVocab) {
  TextTokenizer tokenizer;
  for (int t = 0; t < kNumTasks; ++t) {
    auto ids = tokenizer.Encode(InstructionFor(static_cast<Task>(t)));
    EXPECT_FALSE(ids.empty());
    for (int id : ids) EXPECT_NE(id, tokenizer.unk_id());
  }
}

TEST(TextTokenizerTest, UnknownWordsMapToUnk) {
  TextTokenizer tokenizer;
  auto ids = tokenizer.Encode("zzzqqq");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], tokenizer.unk_id());
}

TEST(TaskTest, DistinctInstructionsPerTask) {
  std::set<std::string> seen;
  for (int t = 0; t < kNumTasks; ++t) {
    seen.insert(InstructionFor(static_cast<Task>(t)));
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kNumTasks));
}

TEST_F(CoreTest, TokenizerProducesTokenPerUnit) {
  auto seq = data::StUnitSequence::FromTrajectory(AnyTrajectory());
  nn::Tensor tokens = model_->tokenizer()->Tokenize(seq);
  EXPECT_EQ(tokens.shape()[0], seq.length());
  EXPECT_EQ(tokens.shape()[1], model_->config().d_model);
}

TEST_F(CoreTest, TokenizerUnifiedAcrossModalities) {
  // Trajectories and traffic series produce tokens in the same space.
  auto traj_seq = data::StUnitSequence::FromTrajectory(AnyTrajectory());
  auto traffic_seq = data::StUnitSequence::FromTrafficSeries(
      dataset_->traffic(), 0, 0, 8);
  nn::Tensor a = model_->tokenizer()->Tokenize(traj_seq);
  nn::Tensor b = model_->tokenizer()->Tokenize(traffic_seq);
  EXPECT_EQ(a.shape()[1], b.shape()[1]);
}

TEST_F(CoreTest, SpatialRepresentationCacheIsPerSlice) {
  nn::Tensor r0 = model_->tokenizer()->SpatialRepresentations(0);
  nn::Tensor r0_again = model_->tokenizer()->SpatialRepresentations(0);
  EXPECT_EQ(r0.impl().get(), r0_again.impl().get());  // Cached object.
  nn::Tensor r1 = model_->tokenizer()->SpatialRepresentations(1);
  EXPECT_NE(r0.impl().get(), r1.impl().get());
  model_->tokenizer()->BeginStep();
  nn::Tensor r0_new = model_->tokenizer()->SpatialRepresentations(0);
  EXPECT_NE(r0.impl().get(), r0_new.impl().get());
}

TEST_F(CoreTest, HiddenTimesZeroTimeFeatures) {
  auto seq = data::StUnitSequence::FromTrajectory(AnyTrajectory());
  std::vector<bool> hide(seq.segments.size(), true);
  hide[0] = false;
  nn::Tensor hidden = model_->tokenizer()->TokenizeWithHiddenTimes(seq, hide);
  model_->tokenizer()->BeginStep();
  nn::Tensor visible = model_->tokenizer()->Tokenize(seq);
  // Tokens must differ at positions where time was hidden.
  float diff = 0;
  for (int j = 0; j < hidden.shape()[1]; ++j) {
    diff += std::fabs(hidden.at(1, j) - visible.at(1, j));
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST_F(CoreTest, NextHopLogitsShape) {
  data::Trajectory prefix = AnyTrajectory();
  prefix.points.pop_back();
  nn::Tensor logits = model_->NextHopLogits(prefix);
  EXPECT_EQ(logits.shape()[0], 1);
  EXPECT_EQ(logits.shape()[1], dataset_->network().num_segments());
}

TEST_F(CoreTest, TravelTimeDeltasShape) {
  const auto& trip = AnyTrajectory();
  nn::Tensor deltas = model_->TravelTimeDeltas(trip);
  EXPECT_EQ(deltas.shape()[0], trip.length() - 1);
  EXPECT_EQ(deltas.shape()[1], 1);
}

TEST_F(CoreTest, ClassifyLogitsMatchUserSpace) {
  nn::Tensor logits = model_->ClassifyLogits(AnyTrajectory());
  ASSERT_TRUE(model_->classifies_users());
  EXPECT_EQ(logits.shape()[1], dataset_->num_users());
}

TEST_F(CoreTest, EmbedIsFixedWidth) {
  nn::Tensor e1 = model_->Embed(AnyTrajectory(5));
  EXPECT_EQ(e1.shape(), (std::vector<int64_t>{1, model_->config().d_model}));
}

TEST_F(CoreTest, RecoverLogitsOnePerMaskedPosition) {
  const auto& trip = AnyTrajectory(8);
  util::Rng rng(3);
  auto kept = data::DownsampleKeepIndices(trip.length(), 0.5, &rng);
  auto dropped = data::ComplementIndices(trip.length(), kept);
  if (dropped.empty()) GTEST_SKIP();
  nn::Tensor logits = model_->RecoverLogits(trip, kept);
  EXPECT_EQ(logits.shape()[0], static_cast<int64_t>(dropped.size()));
  EXPECT_EQ(logits.shape()[1], dataset_->network().num_segments());
}

TEST_F(CoreTest, PredictTrafficShapes) {
  nn::Tensor one = model_->PredictTraffic(0, 0, 1);
  EXPECT_EQ(one.shape(), (std::vector<int64_t>{1, data::kTrafficChannels}));
  nn::Tensor multi = model_->PredictTraffic(0, 0, 6);
  EXPECT_EQ(multi.shape(), (std::vector<int64_t>{6, data::kTrafficChannels}));
}

TEST_F(CoreTest, ImputeTrafficShape) {
  nn::Tensor imputed = model_->ImputeTraffic(1, 0, 12, {2, 5, 9});
  EXPECT_EQ(imputed.shape(), (std::vector<int64_t>{3, data::kTrafficChannels}));
}

TEST_F(CoreTest, MaskedReconstructOutputs) {
  auto seq = data::StUnitSequence::FromTrajectory(AnyTrajectory(6));
  auto rec = model_->MaskedReconstruct(seq, {1, 3});
  EXPECT_EQ(rec.segment_logits.shape()[0], 2);
  EXPECT_EQ(rec.states.shape(),
            (std::vector<int64_t>{2, data::kTrafficChannels}));
  EXPECT_EQ(rec.times.shape(), (std::vector<int64_t>{2, 1}));
}

TEST_F(CoreTest, ClipTrajectoryKeepsEndpoints) {
  data::Trajectory trip;
  for (int i = 0; i < 100; ++i) trip.points.push_back({i % 7, i * 10.0});
  data::Trajectory clipped = model_->ClipTrajectory(trip);
  EXPECT_LE(clipped.length(), model_->config().max_trajectory_tokens);
  EXPECT_EQ(clipped.points.front().timestamp, 0.0);
  EXPECT_EQ(clipped.points.back().timestamp, 990.0);
}

TEST_F(CoreTest, TrainingStepReducesNextHopLoss) {
  // One trajectory, several Adam steps on the full model: loss must drop.
  data::Trajectory trip = AnyTrajectory(6);
  data::Trajectory prefix = trip;
  prefix.points.pop_back();
  const int target = trip.points.back().segment;

  nn::Adam opt(model_->TrainableParameters(), 1e-3f);
  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 8; ++step) {
    model_->BeginStep();
    opt.ZeroGrad();
    nn::Tensor loss =
        nn::CrossEntropy(model_->NextHopLogits(prefix), {target});
    if (step == 0) first_loss = loss.item();
    last_loss = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST_F(CoreTest, BackboneLoraFreeze) {
  // On a fresh small model: freezing the base then enabling LoRA leaves far
  // fewer trainable parameters while keeping forward intact.
  BigCityConfig config;
  config.d_model = 32;
  config.num_heads = 2;
  config.num_layers = 1;
  config.spatial_dim = 8;
  config.gat_hidden = 8;
  BigCityModel model(dataset_, config);
  const int64_t full = static_cast<int64_t>(
      model.backbone()->TrainableParameters().size());
  util::Rng rng(1);
  model.backbone()->EnableLora(&rng);
  model.backbone()->FreezeBase();
  const int64_t adapted = static_cast<int64_t>(
      model.backbone()->TrainableParameters().size());
  EXPECT_LT(adapted, full);
  model.BeginStep();
  nn::Tensor logits = model.NextHopLogits(dataset_->train().front());
  EXPECT_EQ(logits.shape()[1], dataset_->network().num_segments());
}

TEST_F(CoreTest, TextLmLogitsShape) {
  // Use the model's own tokenizer (built with the full InstructionCorpus).
  const auto& tokenizer = model_->text_tokenizer();
  auto ids = tokenizer.Encode("predict the traffic state");
  nn::Tensor logits = model_->backbone()->TextLmLogits(ids);
  EXPECT_EQ(logits.shape()[0], static_cast<int64_t>(ids.size()));
  EXPECT_EQ(logits.shape()[1], tokenizer.vocab_size());
}

// --- Validated (Try*) inference entry points --------------------------------

TEST_F(CoreTest, TryNextHopMatchesDirectCallBitwise) {
  const data::Trajectory& trajectory = AnyTrajectory();
  auto result = model_->TryNextHopLogits(trajectory);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  model_->BeginStep();
  nn::Tensor direct = model_->NextHopLogits(model_->ClipTrajectory(trajectory));
  ASSERT_EQ(result.value().shape(), direct.shape());
  EXPECT_EQ(result.value().data(), direct.data());
}

TEST_F(CoreTest, TryEntryPointsRejectCorruptTrajectory) {
  data::Trajectory corrupt = AnyTrajectory();
  corrupt.points[1].segment = dataset_->network().num_segments() + 3;
  EXPECT_EQ(model_->TryNextHopLogits(corrupt).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->TryTravelTimeDeltas(corrupt).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->TryClassifyLogits(corrupt).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->TryEmbed(corrupt).status().code(),
            util::StatusCode::kInvalidArgument);

  data::Trajectory backwards = AnyTrajectory();
  backwards.points[2].timestamp = backwards.points[1].timestamp - 10.0;
  EXPECT_EQ(model_->TryTravelTimeDeltas(backwards).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(CoreTest, TryRecoverValidatesKeptIndices) {
  data::Trajectory trajectory = AnyTrajectory(6);
  // Recovery bounds length by max_trajectory_tokens instead of clipping.
  if (trajectory.length() > 10) trajectory.points.resize(10);
  // Valid: endpoints kept, interior masked.
  auto ok = model_->TryRecoverLogits(trajectory,
                                     {0, trajectory.length() - 1});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().shape()[0],
            static_cast<int64_t>(trajectory.length() - 2));

  EXPECT_EQ(model_->TryRecoverLogits(trajectory, {0}).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(
      model_->TryRecoverLogits(trajectory, {0, trajectory.length()})
          .status()
          .code(),
      util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->TryRecoverLogits(trajectory, {3, 1}).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(CoreTest, TryTrafficEntryPointsValidateWindows) {
  auto ok = model_->TryPredictTraffic(0, 0, 2);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().shape()[0], 2);

  EXPECT_EQ(model_->TryPredictTraffic(0, 0, 0).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->TryPredictTraffic(-1, 0, 1).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model_
                ->TryPredictTraffic(0, dataset_->traffic().num_slices(), 1)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);

  auto imputed = model_->TryImputeTraffic(0, 0, 8, {2, 5});
  ASSERT_TRUE(imputed.ok()) << imputed.status().ToString();
  EXPECT_EQ(model_->TryImputeTraffic(0, 0, 8, {}).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->TryImputeTraffic(0, 0, 8, {8}).status().code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bigcity::core
