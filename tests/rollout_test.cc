// Model-lifecycle tests (DESIGN.md §4.12): the versioned publication
// protocol, the registry's validation/quarantine behavior, and the
// server's hot-swap / canary / rollback machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "nn/tensor.h"
#include "serve/model_registry.h"
#include "serve/rollout.h"
#include "serve/server.h"
#include "util/fault_injection.h"
#include "util/model_dir.h"

namespace bigcity::serve {
namespace {

/// Fresh (empty) model directory under the system temp dir.
std::string MakeModelDir(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("bigcity_rollout_" + name))
          .string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

/// Flips one byte in `path` (post-manifest corruption / bit rot).
void CorruptFile(const std::string& path, size_t offset) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

class RolloutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = data::ScaleConfig(data::XianLikeConfig(), 0.1);
    config.city.grid_width = 5;
    config.city.grid_height = 5;
    dataset_ = new data::CityDataset(config);
    model_config_.d_model = 32;
    model_config_.num_heads = 2;
    model_config_.num_layers = 1;
    model_config_.spatial_dim = 16;
    model_config_.gat_hidden = 16;
    prototype_ = new core::BigCityModel(dataset_, model_config_);
  }
  static void TearDownTestSuite() {
    delete prototype_;
    delete dataset_;
    prototype_ = nullptr;
    dataset_ = nullptr;
  }
  void TearDown() override { util::FaultInjection::DisarmAll(); }

  static const data::Trajectory& AnyTrajectory(int min_len = 5) {
    for (const auto& t : dataset_->train()) {
      if (t.length() >= min_len) return t;
    }
    return dataset_->train().front();
  }

  static Request NextHopRequest() {
    Request request;
    request.task = core::Task::kNextHop;
    request.trajectory = AnyTrajectory();
    return request;
  }

  /// Same architecture, different init seed: passes the fingerprint check
  /// but carries distinguishable weights.
  static core::BigCityModel MakeVariantModel(uint64_t seed) {
    core::BigCityConfig config = model_config_;
    config.seed = seed;
    return core::BigCityModel(dataset_, config);
  }

  /// Poisons every backbone parameter with one NaN: passes file CRC,
  /// fails the canary health gate on non-finite outputs.
  static void PoisonModel(core::BigCityModel* model) {
    for (nn::Tensor parameter : model->backbone()->Parameters()) {
      parameter.data()[0] = std::numeric_limits<float>::quiet_NaN();
    }
  }

  /// Rollout knobs tuned for test latency: fast polls, tiny canary
  /// window, generous (but bounded) gate deadline.
  static ServeOptions RolloutOptionsFor(const std::string& dir,
                                        int num_workers = 2) {
    ServeOptions options;
    options.num_workers = num_workers;
    options.queue_capacity = 16;
    options.retry_backoff_ms = 0.1;
    options.rollout.model_dir = dir;
    options.rollout.poll_interval_ms = 5;
    options.rollout.canary_min_requests = 3;
    options.rollout.canary_timeout_ms = 8000;
    return options;
  }

  static data::CityDataset* dataset_;
  static core::BigCityConfig model_config_;
  static core::BigCityModel* prototype_;
};

data::CityDataset* RolloutTest::dataset_ = nullptr;
core::BigCityConfig RolloutTest::model_config_;
core::BigCityModel* RolloutTest::prototype_ = nullptr;

// --- Publication protocol ---------------------------------------------------

TEST_F(RolloutTest, VersionDirNameRoundTrip) {
  EXPECT_EQ(util::VersionDirName(7), "v000007");
  uint64_t version = 0;
  EXPECT_TRUE(util::ParseVersionDirName("v000123", &version));
  EXPECT_EQ(version, 123u);
  EXPECT_FALSE(util::ParseVersionDirName("CURRENT", &version));
  EXPECT_FALSE(util::ParseVersionDirName("v00012x", &version));
  EXPECT_FALSE(util::ParseVersionDirName("", &version));
}

TEST_F(RolloutTest, CurrentPointerRoundTrip) {
  const std::string dir = MakeModelDir("current");
  EXPECT_EQ(util::ReadCurrent(dir).status().code(),
            util::StatusCode::kNotFound);
  ASSERT_TRUE(util::PublishCurrent(dir, 1).ok());
  ASSERT_TRUE(util::ReadCurrent(dir).ok());
  EXPECT_EQ(util::ReadCurrent(dir).value(), 1u);
  ASSERT_TRUE(util::PublishCurrent(dir, 42).ok());
  EXPECT_EQ(util::ReadCurrent(dir).value(), 42u);
}

TEST_F(RolloutTest, TornPointerWriteInvisibleToReaders) {
  const std::string dir = MakeModelDir("torn");
  ASSERT_TRUE(util::PublishCurrent(dir, 1).ok());
  {
    util::ScopedFault torn(util::kFaultPublishTornPointer, 0, 1, 2);
    EXPECT_FALSE(util::PublishCurrent(dir, 2).ok());
    EXPECT_EQ(torn.fire_count(), 1);
  }
  // The torn update never became visible: readers still see version 1.
  ASSERT_TRUE(util::ReadCurrent(dir).ok());
  EXPECT_EQ(util::ReadCurrent(dir).value(), 1u);
  // And a torn *first* publish leaves the directory unpublished.
  const std::string fresh = MakeModelDir("torn_fresh");
  {
    util::ScopedFault torn(util::kFaultPublishTornPointer, 0, 1, 1);
    EXPECT_FALSE(util::PublishCurrent(fresh, 1).ok());
  }
  EXPECT_EQ(util::ReadCurrent(fresh).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(RolloutTest, ManifestRoundTrip) {
  const std::string dir = MakeModelDir("manifest");
  const std::string version_dir = util::VersionPath(dir, 3);
  ASSERT_TRUE(util::EnsureDirectory(version_dir).ok());
  util::VersionManifest manifest;
  manifest.version = 3;
  manifest.parent_version = 2;
  manifest.config_fingerprint = "cfg-deadbeef";
  manifest.weight_bytes = 1234;
  manifest.weight_crc = 0xCAFEF00D;
  ASSERT_TRUE(util::WriteManifest(version_dir, manifest).ok());
  auto read = util::ReadManifest(version_dir);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().version, 3u);
  EXPECT_EQ(read.value().parent_version, 2);
  EXPECT_EQ(read.value().config_fingerprint, "cfg-deadbeef");
  EXPECT_EQ(read.value().weight_bytes, 1234u);
  EXPECT_EQ(read.value().weight_crc, 0xCAFEF00Du);
}

// --- Registry validation & quarantine ---------------------------------------

TEST_F(RolloutTest, PublishedVersionValidates) {
  const std::string dir = MakeModelDir("publish_ok");
  auto published = PublishModel(dir, *prototype_);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.value(), 1u);

  ModelRegistry registry(dir, core::ConfigFingerprint(model_config_));
  auto candidate = registry.PollOnce(0);
  ASSERT_TRUE(candidate.ok());
  EXPECT_EQ(candidate.value().version, 1u);
  EXPECT_EQ(candidate.value().manifest.parent_version, -1);
  EXPECT_EQ(candidate.value().manifest.config_fingerprint,
            core::ConfigFingerprint(model_config_));
  // Nothing newer than what we already serve.
  EXPECT_EQ(registry.PollOnce(1).status().code(),
            util::StatusCode::kNotFound);

  // Sequential publication numbers versions monotonically.
  auto second = PublishModel(dir, *prototype_, /*parent_version=*/1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 2u);
  auto next = registry.PollOnce(1);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().manifest.parent_version, 1);
}

TEST_F(RolloutTest, CorruptWeightsQuarantined) {
  const std::string dir = MakeModelDir("corrupt");
  ASSERT_TRUE(PublishModel(dir, *prototype_).ok());
  CorruptFile(util::WeightsPath(util::VersionPath(dir, 1)), 100);

  ModelRegistry registry(dir, core::ConfigFingerprint(model_config_));
  // Bad candidate must look exactly like no candidate.
  EXPECT_EQ(registry.PollOnce(0).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_TRUE(registry.IsQuarantined(1));
  const auto quarantined = registry.Quarantined();
  ASSERT_EQ(quarantined.count(1), 1u);
  EXPECT_NE(quarantined.at(1).find("does not match manifest"),
            std::string::npos);
  // Repolls stay quiet; no revalidation churn.
  EXPECT_EQ(registry.PollOnce(0).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(RolloutTest, FingerprintMismatchQuarantined) {
  const std::string dir = MakeModelDir("fingerprint");
  ASSERT_TRUE(
      PublishModelWithFingerprint(dir, *prototype_, "cfg-0bad0bad").ok());
  ModelRegistry registry(dir, core::ConfigFingerprint(model_config_));
  EXPECT_EQ(registry.PollOnce(0).status().code(),
            util::StatusCode::kNotFound);
  ASSERT_TRUE(registry.IsQuarantined(1));
  EXPECT_NE(registry.Quarantined().at(1).find("fingerprint"),
            std::string::npos);
}

TEST_F(RolloutTest, QuarantineMarkerSurvivesRestart) {
  const std::string dir = MakeModelDir("marker");
  ASSERT_TRUE(PublishModel(dir, *prototype_).ok());
  CorruptFile(util::WeightsPath(util::VersionPath(dir, 1)), 64);
  {
    ModelRegistry registry(dir, core::ConfigFingerprint(model_config_));
    EXPECT_FALSE(registry.PollOnce(0).ok());
    EXPECT_TRUE(registry.IsQuarantined(1));
  }
  // A fresh registry (process restart) adopts the persisted marker
  // without re-running validation.
  ModelRegistry restarted(dir, core::ConfigFingerprint(model_config_));
  EXPECT_EQ(restarted.PollOnce(0).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_TRUE(restarted.IsQuarantined(1));
}

// --- Health gate (pure decision function) -----------------------------------

TEST_F(RolloutTest, GateNotReadyBelowMinRequests) {
  RolloutOptions options;
  options.canary_min_requests = 8;
  CohortStats::Snapshot stable;
  CohortStats::Snapshot canary;
  canary.requests = 7;
  EXPECT_EQ(EvaluateCanary(stable, canary, options, nullptr),
            GateVerdict::kNotReady);
  canary.requests = 8;
  EXPECT_EQ(EvaluateCanary(stable, canary, options, nullptr),
            GateVerdict::kPass);
}

TEST_F(RolloutTest, GateFailsOnNonFiniteImmediately) {
  RolloutOptions options;
  options.canary_min_requests = 100;  // Irrelevant: NaN short-circuits.
  CohortStats::Snapshot stable;
  CohortStats::Snapshot canary;
  canary.requests = 1;
  canary.nonfinite = 1;
  std::string reason;
  EXPECT_EQ(EvaluateCanary(stable, canary, options, &reason),
            GateVerdict::kFail);
  EXPECT_NE(reason.find("non-finite"), std::string::npos);
}

TEST_F(RolloutTest, GateFailsOnErrorRate) {
  RolloutOptions options;
  options.canary_min_requests = 10;
  options.canary_error_margin = 0.05;
  CohortStats::Snapshot stable;
  stable.requests = 100;
  stable.failures = 1;
  CohortStats::Snapshot canary;
  canary.requests = 10;
  canary.failures = 3;
  std::string reason;
  EXPECT_EQ(EvaluateCanary(stable, canary, options, &reason),
            GateVerdict::kFail);
  EXPECT_NE(reason.find("error rate"), std::string::npos);
}

TEST_F(RolloutTest, GateFailsOnLatencyInflation) {
  RolloutOptions options;
  options.canary_min_requests = 4;
  options.canary_latency_inflation = 3.0;
  CohortStats stable;
  CohortStats canary;
  for (int i = 0; i < 8; ++i) stable.RecordSuccess(100);
  for (int i = 0; i < 8; ++i) canary.RecordSuccess(1000);
  std::string reason;
  EXPECT_EQ(EvaluateCanary(stable.Get(), canary.Get(), options, &reason),
            GateVerdict::kFail);
  EXPECT_NE(reason.find("p95"), std::string::npos);
  // Without stable samples the latency criterion is mute (no baseline).
  CohortStats empty_stable;
  EXPECT_EQ(
      EvaluateCanary(empty_stable.Get(), canary.Get(), options, nullptr),
      GateVerdict::kPass);
}

TEST_F(RolloutTest, GateFailsOnSloBurnRate) {
  RolloutOptions options;
  options.canary_min_requests = 4;
  options.canary_max_burn_rate = 2.0;
  CohortStats::Snapshot stable;
  CohortStats::Snapshot canary;
  canary.requests = 8;
  // At or under the ceiling: the serving SLOs are healthy, canary passes.
  EXPECT_EQ(EvaluateCanary(stable, canary, options, nullptr, /*slo_burn_rate=*/2.0),
            GateVerdict::kPass);
  std::string reason;
  EXPECT_EQ(EvaluateCanary(stable, canary, options, &reason,
                           /*slo_burn_rate=*/2.5),
            GateVerdict::kFail);
  EXPECT_NE(reason.find("burn rate"), std::string::npos);
  // Default options leave the criterion disabled: any burn passes.
  RolloutOptions no_gate;
  no_gate.canary_min_requests = 4;
  EXPECT_EQ(EvaluateCanary(stable, canary, no_gate, nullptr,
                           /*slo_burn_rate=*/1e9),
            GateVerdict::kPass);
}

// --- Config fingerprint -----------------------------------------------------

TEST_F(RolloutTest, ConfigFingerprintCoversArchitectureOnly) {
  const std::string base = core::ConfigFingerprint(model_config_);
  EXPECT_EQ(base, core::ConfigFingerprint(model_config_));

  core::BigCityConfig wider = model_config_;
  wider.d_model = 64;
  EXPECT_NE(base, core::ConfigFingerprint(wider));

  // Runtime-only knobs must not change weight compatibility.
  core::BigCityConfig retuned = model_config_;
  retuned.seed = 999;
  retuned.threads = 7;
  EXPECT_EQ(base, core::ConfigFingerprint(retuned));
}

// --- Server lifecycle -------------------------------------------------------

TEST_F(RolloutTest, ServerBootsFromPublishedVersion) {
  const std::string dir = MakeModelDir("boot");
  core::BigCityModel published = MakeVariantModel(7);
  ASSERT_TRUE(PublishModel(dir, published).ok());

  InferenceServer server(dataset_, model_config_, RolloutOptionsFor(dir, 1));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.stable_version(), 1u);

  Request request = NextHopRequest();
  Response response = server.ServeSync(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.model_version, 1u);
  // Bit-identical to calling the published weights directly.
  auto direct = published.TryNextHopLogits(request.trajectory);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response.output.data(), direct.value().data());
  server.Stop();
}

TEST_F(RolloutTest, HotSwapPromotesHealthyVersion) {
  const std::string dir = MakeModelDir("hotswap");
  ServeOptions options = RolloutOptionsFor(dir);
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.stable_version(), 0u);
  EXPECT_EQ(server.rollout_state(), RolloutState::kIdle);

  Request request = NextHopRequest();
  const Response before = server.ServeSync(request);
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.model_version, 0u);

  core::BigCityModel next = MakeVariantModel(123);
  ASSERT_TRUE(PublishModel(dir, next).ok());

  // Keep traffic flowing so the canary can accumulate evidence. A healthy
  // swap must not fail a single request.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stable_version() != 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "rollout did not complete";
    Response response = server.ServeSync(request);
    ASSERT_TRUE(response.status.ok()) << response.status.message();
  }
  ASSERT_TRUE(server.WaitForRolloutState(RolloutState::kStable, 2000));
  EXPECT_EQ(server.generation(), 1u);

  Response after = server.ServeSync(request);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.model_version, 1u);
  // New weights actually serve: outputs changed.
  EXPECT_NE(after.output.data(), before.output.data());
  auto direct = next.TryNextHopLogits(request.trajectory);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(after.output.data(), direct.value().data());
  server.Stop();
}

TEST_F(RolloutTest, NanCanaryRollsBackBitIdentical) {
  const std::string dir = MakeModelDir("nan_canary");
  InferenceServer server(dataset_, model_config_, RolloutOptionsFor(dir),
                         prototype_);
  ASSERT_TRUE(server.Start().ok());

  Request request = NextHopRequest();
  const Response before = server.ServeSync(request);
  ASSERT_TRUE(before.status.ok());

  core::BigCityModel poisoned = MakeVariantModel(55);
  PoisonModel(&poisoned);
  ASSERT_TRUE(PublishModel(dir, poisoned).ok());

  // Drive traffic; canary requests fail with kInternal (never a crash,
  // never retried into the breaker) until the gate trips.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.rollout_state() != RolloutState::kRolledBack) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "rollback did not happen";
    Response response = server.ServeSync(request);
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), util::StatusCode::kInternal);
    }
  }

  // Stable version pinned, candidate quarantined with the gate's reason.
  EXPECT_EQ(server.stable_version(), 0u);
  EXPECT_EQ(server.generation(), 0u);
  ASSERT_NE(server.registry(), nullptr);
  ASSERT_TRUE(server.registry()->IsQuarantined(1));
  EXPECT_NE(server.registry()->Quarantined().at(1).find("non-finite"),
            std::string::npos);

  // Post-rollback outputs are bit-identical to pre-push stable outputs.
  for (int i = 0; i < 5; ++i) {
    Response after = server.ServeSync(request);
    ASSERT_TRUE(after.status.ok());
    EXPECT_EQ(after.model_version, 0u);
    EXPECT_EQ(after.output.data(), before.output.data());
  }
  // The breaker never saw the NaN failures (model health is the rollout
  // gate's job, not the breaker's).
  EXPECT_EQ(server.breaker_state(core::Task::kNextHop),
            CircuitBreaker::State::kClosed);
  server.Stop();
}

TEST_F(RolloutTest, StarvedCanaryRollsBack) {
  const std::string dir = MakeModelDir("starved");
  ServeOptions options = RolloutOptionsFor(dir);
  options.rollout.canary_timeout_ms = 150;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(PublishModel(dir, *prototype_).ok());
  // No traffic at all: the gate must refuse to promote without evidence.
  ASSERT_TRUE(server.WaitForRolloutState(RolloutState::kRolledBack, 10000));
  EXPECT_EQ(server.stable_version(), 0u);
  ASSERT_TRUE(server.registry()->IsQuarantined(1));
  EXPECT_NE(server.registry()->Quarantined().at(1).find("starved"),
            std::string::npos);
  server.Stop();
}

TEST_F(RolloutTest, InflatedCanaryLatencyRollsBack) {
  const std::string dir = MakeModelDir("latency");
  InferenceServer server(dataset_, model_config_, RolloutOptionsFor(dir),
                         prototype_);
  ASSERT_TRUE(server.Start().ok());

  // Every canary forward reports +5s; the stable cohort keeps honest
  // timings, so the p95 comparison must trip.
  util::FaultInjection::Arm(util::kFaultRolloutCanaryLatency, 0, 1 << 20,
                            5'000'000);
  ASSERT_TRUE(PublishModel(dir, MakeVariantModel(9)).ok());

  Request request = NextHopRequest();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.rollout_state() != RolloutState::kRolledBack) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "latency gate did not trip";
    Response response = server.ServeSync(request);
    ASSERT_TRUE(response.status.ok());
  }
  EXPECT_EQ(server.stable_version(), 0u);
  ASSERT_TRUE(server.registry()->IsQuarantined(1));
  EXPECT_NE(server.registry()->Quarantined().at(1).find("p95"),
            std::string::npos);
  server.Stop();
}

TEST_F(RolloutTest, SlowStagedLoadDoesNotBlockServing) {
  const std::string dir = MakeModelDir("slowload");
  InferenceServer server(dataset_, model_config_, RolloutOptionsFor(dir),
                         prototype_);
  ASSERT_TRUE(server.Start().ok());

  util::FaultInjection::Arm(util::kFaultRolloutSlowLoad, 0, 1, 400);
  ASSERT_TRUE(PublishModel(dir, MakeVariantModel(31)).ok());

  // While the controller is stuck loading, the stable fleet keeps
  // serving at full health.
  Request request = NextHopRequest();
  const auto hold_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  int served = 0;
  while (std::chrono::steady_clock::now() < hold_until) {
    Response response = server.ServeSync(request);
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.model_version, 0u);
    ++served;
  }
  EXPECT_GT(served, 0);

  // And the rollout still completes afterwards.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stable_version() != 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    ASSERT_TRUE(server.ServeSync(request).status.ok());
  }
  server.Stop();
}

TEST_F(RolloutTest, NonFiniteOutputIsDefiniteInternalError) {
  // No rollout machinery at all: the non-finite guard protects every
  // serving configuration.
  core::BigCityModel poisoned = MakeVariantModel(77);
  PoisonModel(&poisoned);
  ServeOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  InferenceServer server(dataset_, model_config_, options, &poisoned);
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 8; ++i) {
    Response response = server.ServeSync(NextHopRequest());
    EXPECT_EQ(response.status.code(), util::StatusCode::kInternal);
    EXPECT_EQ(response.outcome, Outcome::kFailed);
    EXPECT_EQ(response.retries, 0);  // Deterministic poison: no retry.
  }
  // NaN outputs do not feed the breaker.
  EXPECT_EQ(server.breaker_state(core::Task::kNextHop),
            CircuitBreaker::State::kClosed);
  server.Stop();
}

}  // namespace
}  // namespace bigcity::serve
