// Tests for the observability layer (src/obs): sharded metrics under
// concurrency, trace ring-buffer overflow, chrome://tracing export, the
// JSONL run report, and the instrumentation macros. The whole file also
// compiles with -DBIGCITY_OBS=OFF (the macro tests drop out), which is how
// CI proves the probes are compile-out-able.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace bigcity::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CounterTest, ConcurrentAddsMerge) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.Value(), -1.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketsCountSumMean) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Record(0.5);    // <= 1
  histogram.Record(10.0);   // <= 10 (bounds are inclusive upper edges)
  histogram.Record(50.0);   // <= 100
  histogram.Record(500.0);  // overflow
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 560.5);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 560.5 / 4.0);
  const std::vector<uint64_t> expected = {1, 1, 1, 1};
  EXPECT_EQ(histogram.BucketCounts(), expected);
  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsMerge) {
  Histogram histogram({1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Record(2.0);
    });
  }
  for (auto& thread : threads) thread.join();
  const uint64_t total = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(histogram.Count(), total);
  // Integer-valued records sum exactly in a double (well below 2^53).
  EXPECT_DOUBLE_EQ(histogram.Sum(), 2.0 * static_cast<double>(total));
  EXPECT_EQ(histogram.BucketCounts()[1], total);
}

TEST(HistogramTest, EmptyBoundsIsCountSumOnly) {
  Histogram histogram({});
  histogram.Record(3.0);
  histogram.Record(7.0);
  EXPECT_EQ(histogram.Count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 10.0);
  ASSERT_EQ(histogram.BucketCounts().size(), 1u);  // Overflow bucket only.
  EXPECT_EQ(histogram.BucketCounts()[0], 2u);
}

TEST(RegistryTest, HandlesAreStableAcrossReset) {
  auto& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.registry.stable");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(registry.GetCounter("test.registry.stable"), counter);
  counter->Add(5);
  registry.Reset();
  // Reset zeroes values but never invalidates handles: cached pointers in
  // the instrumentation macros must stay usable.
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add(2);
  EXPECT_EQ(registry.GetCounter("test.registry.stable")->Value(), 2u);
  Histogram* histogram = registry.GetHistogram("test.registry.hist");
  EXPECT_EQ(registry.GetHistogram("test.registry.hist"), histogram);
}

TEST(RegistryTest, SnapshotCapturesAllMetricKinds) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot.counter")->Add(3);
  registry.GetGauge("test.snapshot.gauge")->Set(1.5);
  registry.GetHistogram("test.snapshot.hist", {10.0})->Record(4.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("test.snapshot.counter"), 3u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("test.snapshot.gauge"), 1.5);
  const auto& hist = snapshot.histograms.at("test.snapshot.hist");
  EXPECT_EQ(hist.count, 1u);
  EXPECT_DOUBLE_EQ(hist.sum, 4.0);

  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test.snapshot.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TraceBufferTest, OverflowDropsOldestAndCounts) {
  TraceBuffer buffer(4);
  static const char* const kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (uint64_t i = 0; i < 6; ++i) {
    TraceEvent event;
    event.name = kNames[i];
    event.category = "test";
    event.start_us = i;
    buffer.Record(event);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 2u);
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Drop-OLDEST: the survivors are the newest events, oldest first.
  EXPECT_STREQ(events.front().name, "e2");
  EXPECT_STREQ(events.back().name, "e5");
  EXPECT_EQ(events.front().start_us, 2u);
}

TEST(TraceBufferTest, SetCapacityClearsBufferAndDropCounter) {
  TraceBuffer buffer(2);
  TraceEvent event;
  event.name = "e";
  buffer.Record(event);
  buffer.Record(event);
  buffer.Record(event);
  EXPECT_EQ(buffer.dropped(), 1u);
  buffer.SetCapacity(8);
  EXPECT_EQ(buffer.capacity(), 8u);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceSpanTest, DisabledTracingRecordsNoEvents) {
  TraceBuffer::Global().Clear();
  ASSERT_FALSE(TracingEnabled());
  { TraceSpan span("test.inert", "test"); }
  EXPECT_EQ(TraceBuffer::Global().size(), 0u);
}

TEST(TraceSpanTest, HistogramFeedsEvenWhenTracingDisabled) {
  Histogram histogram({});
  ASSERT_FALSE(TracingEnabled());
  { TraceSpan span("test.hist_only", "test", &histogram); }
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(TraceSpanTest, NestedSpansExportValidChromeJson) {
  TraceBuffer::Global().Clear();
  SetTracingEnabled(true);
  {
    TraceSpan outer("test.outer", "test");
    { TraceSpan inner("test.inner", "test"); }
  }
  SetTracingEnabled(false);

  const std::vector<TraceEvent> events = TraceBuffer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction, so the inner one lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  // Chrome infers nesting from containment on the same tid.
  EXPECT_EQ(inner.thread_id, outer.thread_id);
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);

  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  std::string error;
  ASSERT_TRUE(TraceBuffer::Global().WriteJson(path, &error)) << error;
  const std::string json = ReadFile(path);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIdTest, NextTraceIdIsNonzeroAndUnique) {
  const uint64_t a = NextTraceId();
  const uint64_t b = NextTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  uint64_t from_thread = 0;
  std::thread([&from_thread] { from_thread = NextTraceId(); }).join();
  EXPECT_NE(from_thread, 0u);
  EXPECT_NE(from_thread, a);
  EXPECT_NE(from_thread, b);
}

TEST(TraceIdTest, ScopeStampsSpansAndRestoresOnExit) {
  TraceBuffer::Global().Clear();
  ASSERT_EQ(CurrentTraceId(), 0u);
  SetTracingEnabled(true);
  const uint64_t outer_id = NextTraceId();
  const uint64_t inner_id = NextTraceId();
  {
    TraceIdScope outer(outer_id);
    EXPECT_EQ(CurrentTraceId(), outer_id);
    {
      // Nested scopes (the batch-fallback path) shadow and restore.
      TraceIdScope inner(inner_id);
      EXPECT_EQ(CurrentTraceId(), inner_id);
      TraceSpan span("test.scoped_inner", "test");
    }
    EXPECT_EQ(CurrentTraceId(), outer_id);
    TraceSpan span("test.scoped_outer", "test");
  }
  SetTracingEnabled(false);
  EXPECT_EQ(CurrentTraceId(), 0u);

  const std::vector<TraceEvent> events = TraceBuffer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, inner_id);
  EXPECT_EQ(events[1].trace_id, outer_id);
}

TEST(TraceFlowTest, FlowEventsExportWithBindingIdAndArgs) {
  TraceBuffer::Global().Clear();
  RecordFlowEvent("test.flow", "test", 's', 77);  // Tracing off: dropped.
  EXPECT_EQ(TraceBuffer::Global().size(), 0u);

  SetTracingEnabled(true);
  const uint64_t id = NextTraceId();
  {
    TraceIdScope scope(id);
    TraceSpan span("test.flow_span", "test");
    RecordFlowEvent("test.flow", "test", 's', id);
    RecordFlowEvent("test.flow", "test", 't', id);
    RecordFlowEvent("test.flow", "test", 'f', id);
  }
  SetTracingEnabled(false);

  const std::vector<TraceEvent> events = TraceBuffer::Global().Events();
  ASSERT_EQ(events.size(), 4u);  // Three flow markers + the enclosing span.
  EXPECT_EQ(events[0].phase, 's');
  EXPECT_EQ(events[1].phase, 't');
  EXPECT_EQ(events[2].phase, 'f');
  EXPECT_EQ(events[3].phase, 'X');
  for (const TraceEvent& event : events) EXPECT_EQ(event.trace_id, id);
  // Flow markers must land inside the span's interval on the same thread —
  // that containment is what chrome uses to attach the arrows to slices.
  const TraceEvent& span = events[3];
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].thread_id, span.thread_id);
    EXPECT_GE(events[i].start_us, span.start_us);
    EXPECT_LE(events[i].start_us, span.start_us + span.duration_us);
  }

  const std::string path = testing::TempDir() + "/obs_test_flow.json";
  std::string error;
  ASSERT_TRUE(TraceBuffer::Global().WriteJson(path, &error)) << error;
  const std::string json = ReadFile(path);
  const std::string id_str = std::to_string(id);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // The finish marker binds to its enclosing slice, not the next one.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":" + id_str), std::string::npos);
  // The span carries the id under args so X events are greppable by id.
  EXPECT_NE(json.find("\"args\":{\"trace_id\":" + id_str + "}"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceBufferTest, DropOldestKeepsDroppedCount) {
  TraceBuffer buffer(2);
  TraceEvent event;
  event.name = "drop";
  for (int i = 0; i < 5; ++i) buffer.Record(event);
  EXPECT_EQ(buffer.dropped(), 3u);
#if BIGCITY_OBS
  // Every ring overwrite also moves the global trace.dropped counter, so
  // run reports can surface truncation without touching the buffer.
  EXPECT_GE(MetricsRegistry::Global().GetCounter("trace.dropped")->Value(),
            3u);
#endif
}

TEST(SloTrackerTest, WindowStatisticsAndBurnRate) {
  SloTracker tracker;
  SloObjective objective;
  objective.success_rate = 0.9;  // Error budget: 10%.
  objective.p99_us = 100.0;
  objective.window = 8;
  const int task = tracker.RegisterTask("SloMath", objective);
  // Re-registration returns the same handle and keeps the window.
  EXPECT_EQ(tracker.RegisterTask("SloMath", objective), task);

  for (int i = 0; i < 6; ++i) tracker.Record(task, true, 10.0);
  tracker.Record(task, false, 50.0);
  tracker.Record(task, false, 500.0);

  const SloTracker::TaskSnapshot snapshot = tracker.Snapshot(task);
  EXPECT_EQ(snapshot.window_requests, 8u);
  EXPECT_DOUBLE_EQ(snapshot.success_rate, 0.75);
  // Burn = error rate / budget = 0.25 / 0.10.
  EXPECT_NEAR(snapshot.burn_rate, 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(snapshot.p50_us, 10.0);
  EXPECT_DOUBLE_EQ(snapshot.p99_us, 500.0);
  EXPECT_FALSE(snapshot.p99_within_objective);

  tracker.Publish();
  auto& registry = MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo.SloMath.success_rate")->Value(),
                   0.75);
  EXPECT_NEAR(registry.GetGauge("slo.SloMath.burn_rate")->Value(), 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo.SloMath.p99_us")->Value(), 500.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("slo.SloMath.p99_within_objective")->Value(), 0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("slo.SloMath.window_requests")->Value(), 8.0);

  // The window slides: 8 successes evict both failures.
  for (int i = 0; i < 8; ++i) tracker.Record(task, true, 10.0);
  EXPECT_DOUBLE_EQ(tracker.Snapshot(task).success_rate, 1.0);
  EXPECT_DOUBLE_EQ(tracker.Snapshot(task).burn_rate, 0.0);
}

TEST(SloTrackerTest, PerfectObjectiveUsesSentinelBurn) {
  SloTracker tracker;
  SloObjective objective;
  objective.success_rate = 1.0;  // No error budget at all.
  objective.window = 4;
  const int task = tracker.RegisterTask("SloPerfect", objective);
  tracker.Record(task, true, 1.0);
  EXPECT_DOUBLE_EQ(tracker.Snapshot(task).burn_rate, 0.0);
  tracker.Record(task, false, 1.0);
  // Any failure against a 100% objective is infinite burn, reported as a
  // large finite sentinel so gauges stay plottable.
  EXPECT_DOUBLE_EQ(tracker.Snapshot(task).burn_rate, 1e9);
}

TEST(SloTrackerTest, MaxBurnRateFiltersThinWindows) {
  SloTracker tracker;
  SloObjective objective;
  objective.success_rate = 0.5;
  objective.window = 16;
  const int hot = tracker.RegisterTask("SloHot", objective);
  const int thin = tracker.RegisterTask("SloThin", objective);
  for (int i = 0; i < 10; ++i) tracker.Record(hot, i % 2 == 0, 1.0);
  tracker.Record(thin, false, 1.0);  // 100% errors but only one sample.
  // Burn(hot) = 0.5 / 0.5 = 1; burn(thin) = 1 / 0.5 = 2.
  EXPECT_NEAR(tracker.MaxBurnRate(/*min_requests=*/1), 2.0, 1e-9);
  EXPECT_NEAR(tracker.MaxBurnRate(/*min_requests=*/5), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(tracker.MaxBurnRate(/*min_requests=*/100), 0.0);
}

TEST(TelemetryExporterTest, EmitsDeltasGaugesAndFinalTick) {
  auto& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("serve.test.telemetry.count");
  Gauge* gauge = registry.GetGauge("slo.TelemetryT.level");
  Counter* filtered = registry.GetCounter("train.test.telemetry.hidden");
  counter->Reset();
  counter->Add(5);
  gauge->Set(1.5);
  filtered->Add(9);

  const std::string path = testing::TempDir() + "/obs_test_telemetry.jsonl";
  std::remove(path.c_str());
  TelemetryExporter exporter;
  int preludes = 0;
  exporter.SetPrelude([&preludes] { ++preludes; });
  TelemetryExporter::Options options;
  options.interval_ms = 60000.0;  // Only the forced final tick fires.
  std::string error;
  ASSERT_TRUE(exporter.Start(path, options, &error)) << error;
  EXPECT_TRUE(exporter.running());
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  ASSERT_GE(exporter.ticks(), 1u);
  EXPECT_GE(preludes, 1);

  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"event\":\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
  // Counters ship as deltas since the previous tick, gauges as absolutes.
  EXPECT_NE(json.find("\"serve.test.telemetry.count\":5"),
            std::string::npos);
  EXPECT_NE(json.find("\"slo.TelemetryT.level\":1.5"), std::string::npos);
  // Names outside the serve./slo. prefixes never enter the stream.
  EXPECT_EQ(json.find("train.test.telemetry.hidden"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceThreadIdTest, StablePerThreadDistinctAcrossThreads) {
  const uint32_t main_id = TraceThreadId();
  EXPECT_EQ(TraceThreadId(), main_id);
  uint32_t other_id = main_id;
  std::thread([&other_id] { other_id = TraceThreadId(); }).join();
  EXPECT_NE(other_id, main_id);
}

TEST(RunReportTest, WritesOneJsonObjectPerLine) {
  const std::string path = testing::TempDir() + "/obs_test_report.jsonl";
  {
    RunReport report;
    ASSERT_TRUE(report.Open(path));
    RunReport::Record record;
    record.Str("event", "epoch").Int("epoch", 1).Num("loss", 0.5);
    report.Write(record);
    RunReport::Record summary;
    summary.Str("event", "summary").Int("epochs", 1);
    report.Write(summary);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"event\":\"epoch\",\"epoch\":1,\"loss\":0.5}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"event\":\"summary\",\"epochs\":1}");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(RunReportTest, UnopenedReportIsInert) {
  RunReport report;
  EXPECT_FALSE(report.is_open());
  RunReport::Record record;
  record.Int("x", 1);
  report.Write(record);  // Must not crash.
}

TEST(RunReportTest, EscapesStringValues) {
  RunReport::Record record;
  record.Str("msg", "a\"b\\c\n");
  // Control characters escape as \u00XX (valid JSON, simplest escaper).
  EXPECT_EQ(record.json(), "{\"msg\":\"a\\\"b\\\\c\\u000a\"");
}

#if BIGCITY_OBS

TEST(ObsMacrosTest, CounterMacroFeedsRegistry) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.macro.counter");
  const uint64_t before = counter->Value();
  BIGCITY_COUNTER_INC("test.macro.counter");
  BIGCITY_COUNTER_ADD("test.macro.counter", 4);
  EXPECT_EQ(counter->Value(), before + 5);
}

TEST(ObsMacrosTest, GaugeMacroFeedsRegistry) {
  BIGCITY_GAUGE_SET("test.macro.gauge", 3.25);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("test.macro.gauge")->Value(), 3.25);
}

TEST(ObsMacrosTest, TimedScopeRecordsHistogram) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.macro.scope_us");
  const uint64_t before = histogram->Count();
  { BIGCITY_TIMED_SCOPE_NAMED("test.macro.scope_us", "scope", "test"); }
  EXPECT_EQ(histogram->Count(), before + 1);
}

#endif  // BIGCITY_OBS

}  // namespace
}  // namespace bigcity::obs
