#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "data/dataset.h"
#include "data/masking.h"
#include "data/validate.h"
#include "data/st_unit.h"
#include "data/traffic_aggregator.h"
#include "data/trajectory_generator.h"
#include "roadnet/synthetic_city.h"

namespace bigcity::data {
namespace {

roadnet::RoadNetwork TestCity() {
  roadnet::SyntheticCityConfig config;
  config.grid_width = 6;
  config.grid_height = 6;
  return roadnet::GenerateSyntheticCity(config);
}

TrajectoryGeneratorConfig SmallGenConfig() {
  TrajectoryGeneratorConfig config;
  config.num_users = 10;
  config.num_trajectories = 120;
  config.horizon_days = 1.0;
  return config;
}

TEST(CongestionTest, RushHourSlowerThanNight) {
  const double rush = CongestionMultiplier(8 * 3600.0, 0.5, 1.1);
  const double night = CongestionMultiplier(3 * 3600.0, 0.5, 1.1);
  EXPECT_LT(rush, night);
  EXPECT_LE(rush, 1.0);
  EXPECT_LE(night, 1.0);
}

TEST(CongestionTest, PopularSegmentsSlower) {
  const double busy = CongestionMultiplier(8 * 3600.0, 0.9, 1.1);
  const double quiet = CongestionMultiplier(8 * 3600.0, 0.1, 1.1);
  EXPECT_LT(busy, quiet);
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : net_(TestCity()) {
    TrajectoryGenerator generator(&net_, SmallGenConfig());
    trips_ = generator.Generate();
  }
  roadnet::RoadNetwork net_;
  std::vector<Trajectory> trips_;
};

TEST_F(GeneratorTest, ProducesRequestedVolume) {
  EXPECT_GE(trips_.size(), 60u);
}

TEST_F(GeneratorTest, TimestampsStrictlyIncrease) {
  for (const auto& trip : trips_) {
    for (int l = 1; l < trip.length(); ++l) {
      EXPECT_GT(trip.points[l].timestamp, trip.points[l - 1].timestamp);
    }
  }
}

TEST_F(GeneratorTest, PathsFollowRoadNetwork) {
  for (const auto& trip : trips_) {
    for (int l = 0; l + 1 < trip.length(); ++l) {
      const auto& succ = net_.successors(trip.points[l].segment);
      EXPECT_NE(std::find(succ.begin(), succ.end(),
                          trip.points[l + 1].segment),
                succ.end())
          << "transition not in road network";
    }
  }
}

TEST_F(GeneratorTest, UsersHaveDistinctiveRoutes) {
  // A user's trips should revisit that user's anchor segments: compute, per
  // user, the overlap of segment sets across the user's own trips vs trips
  // of other users. Own-overlap should exceed cross-overlap on average.
  std::map<int, std::set<int>> segments_by_user;
  for (const auto& trip : trips_) {
    for (const auto& p : trip.points) {
      segments_by_user[trip.user_id].insert(p.segment);
    }
  }
  // At least several distinct users present.
  EXPECT_GE(segments_by_user.size(), 5u);
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  TrajectoryGenerator g2(&net_, SmallGenConfig());
  auto trips2 = g2.Generate();
  ASSERT_EQ(trips_.size(), trips2.size());
  for (size_t i = 0; i < trips_.size(); ++i) {
    ASSERT_EQ(trips_[i].length(), trips2[i].length());
    EXPECT_EQ(trips_[i].user_id, trips2[i].user_id);
    for (int l = 0; l < trips_[i].length(); ++l) {
      EXPECT_EQ(trips_[i].points[l].segment, trips2[i].points[l].segment);
      EXPECT_DOUBLE_EQ(trips_[i].points[l].timestamp,
                       trips2[i].points[l].timestamp);
    }
  }
}

TEST_F(GeneratorTest, RushTripsSlowerThanNightTrips) {
  // Mean speed of peak-labelled trips should be lower.
  double peak_speed = 0, off_speed = 0;
  int peak_n = 0, off_n = 0;
  for (const auto& trip : trips_) {
    if (trip.length() < 2) continue;
    double meters = 0;
    for (const auto& p : trip.points) {
      meters += net_.segment(p.segment).length_m;
    }
    const double speed = meters / trip.duration_seconds();
    if (trip.pattern_label == 1) {
      peak_speed += speed;
      ++peak_n;
    } else {
      off_speed += speed;
      ++off_n;
    }
  }
  ASSERT_GT(peak_n, 5);
  ASSERT_GT(off_n, 5);
  EXPECT_LT(peak_speed / peak_n, off_speed / off_n);
}

TEST(TrafficStateTest, SliceIndexing) {
  TrafficStateSeries series(48, 10, 1800.0);
  EXPECT_EQ(series.SliceOf(0.0), 0);
  EXPECT_EQ(series.SliceOf(1799.0), 0);
  EXPECT_EQ(series.SliceOf(1800.0), 1);
  EXPECT_EQ(series.SliceOf(1e9), 47);  // Clamped.
  EXPECT_DOUBLE_EQ(series.SliceStart(2), 3600.0);
}

TEST(TrafficStateTest, SetGetRoundTrip) {
  TrafficStateSeries series(4, 3, 1800.0);
  series.Set(2, 1, 0, 0.7f);
  series.Set(2, 1, 1, 0.3f);
  EXPECT_FLOAT_EQ(series.Get(2, 1, 0), 0.7f);
  EXPECT_EQ(series.Features(2, 1), (std::vector<float>{0.7f, 0.3f}));
  nn::Tensor slice = series.SliceMatrix(2);
  EXPECT_FLOAT_EQ(slice.at(1, 0), 0.7f);
  nn::Tensor seg = series.SegmentSeries(1);
  EXPECT_FLOAT_EQ(seg.at(2, 1), 0.3f);
}

TEST(AggregatorTest, SpeedsReflectObservations) {
  roadnet::RoadNetwork net = TestCity();
  TrajectoryGenerator generator(&net, SmallGenConfig());
  auto trips = generator.Generate();
  TrafficAggregator aggregator(&net, 48, 1800.0, 1.1);
  TrafficStateSeries series = aggregator.Aggregate(trips,
                                                   generator.popularity());
  // All speeds positive and below ~1.5x the global speed-limit scale.
  for (int t = 0; t < series.num_slices(); ++t) {
    for (int i = 0; i < series.num_segments(); ++i) {
      const float speed = series.Get(t, i, 0);
      EXPECT_GT(speed, 0.0f);
      EXPECT_LT(speed, 1.6f);
    }
  }
}

TEST(AggregatorTest, RushSlicesSlowerOnAverage) {
  roadnet::RoadNetwork net = TestCity();
  auto config = SmallGenConfig();
  config.num_trajectories = 300;
  TrajectoryGenerator generator(&net, config);
  auto trips = generator.Generate();
  TrafficAggregator aggregator(&net, 48, 1800.0, 1.1);
  TrafficStateSeries series = aggregator.Aggregate(trips,
                                                   generator.popularity());
  auto mean_speed = [&](int slice) {
    double total = 0;
    for (int i = 0; i < series.num_segments(); ++i) {
      total += series.Get(slice, i, 0);
    }
    return total / series.num_segments();
  };
  // 8am slice (16) vs 3am slice (6).
  EXPECT_LT(mean_speed(16), mean_speed(6));
}

TEST(StUnitTest, TimeFeaturesPeriodicity) {
  auto f1 = TimeFeatures(0.0);
  auto f2 = TimeFeatures(86400.0);  // Next day, same hour.
  EXPECT_NEAR(f1[0], f2[0], 1e-5f);
  EXPECT_NEAR(f1[1], f2[1], 1e-5f);
  EXPECT_EQ(f1.size(), static_cast<size_t>(kTimeFeatureDim));
}

TEST(StUnitTest, TimeFeaturesDistinguishHours) {
  auto morning = TimeFeatures(8 * 3600.0);
  auto evening = TimeFeatures(20 * 3600.0);
  EXPECT_GT(std::fabs(morning[0] - evening[0]) +
                std::fabs(morning[1] - evening[1]),
            0.5f);
}

TEST(StUnitTest, DeltaFeatureScale) {
  EXPECT_FLOAT_EQ(DeltaFeature(1800.0), 1.0f);
  EXPECT_FLOAT_EQ(DeltaFeature(0.0), 0.0f);
}

TEST(StUnitTest, FromTrajectoryPreservesOrder) {
  Trajectory trip;
  trip.points = {{3, 10.0}, {5, 20.0}, {7, 35.0}};
  StUnitSequence seq = StUnitSequence::FromTrajectory(trip);
  EXPECT_TRUE(seq.is_trajectory);
  EXPECT_EQ(seq.segments, (std::vector<int>{3, 5, 7}));
  EXPECT_EQ(seq.timestamps, (std::vector<double>{10.0, 20.0, 35.0}));
}

TEST(StUnitTest, FromTrafficSeriesUnifiedFormat) {
  TrafficStateSeries series(10, 4, 1800.0);
  StUnitSequence seq = StUnitSequence::FromTrafficSeries(series, 2, 3, 4);
  EXPECT_FALSE(seq.is_trajectory);
  EXPECT_EQ(seq.series_segment, 2);
  EXPECT_EQ(seq.length(), 4);
  EXPECT_EQ(seq.segments, (std::vector<int>{2, 2, 2, 2}));
  EXPECT_DOUBLE_EQ(seq.timestamps[0], 3 * 1800.0);
}

TEST(MaskingTest, DownsampleKeepsEndpoints) {
  util::Rng rng(1);
  auto kept = DownsampleKeepIndices(20, 0.9, &rng);
  EXPECT_EQ(kept.front(), 0);
  EXPECT_EQ(kept.back(), 19);
  EXPECT_LT(kept.size(), 10u);
}

TEST(MaskingTest, DownsampleZeroRatioKeepsAll) {
  util::Rng rng(2);
  auto kept = DownsampleKeepIndices(10, 0.0, &rng);
  EXPECT_EQ(kept.size(), 10u);
}

TEST(MaskingTest, RandomMaskDistinctSorted) {
  util::Rng rng(3);
  auto masked = RandomMaskIndices(30, 8, &rng);
  EXPECT_EQ(masked.size(), 8u);
  for (size_t i = 1; i < masked.size(); ++i) {
    EXPECT_LT(masked[i - 1], masked[i]);
  }
}

TEST(MaskingTest, ComplementPartitions) {
  util::Rng rng(4);
  auto kept = DownsampleKeepIndices(15, 0.5, &rng);
  auto dropped = ComplementIndices(15, kept);
  EXPECT_EQ(kept.size() + dropped.size(), 15u);
  std::set<int> all(kept.begin(), kept.end());
  all.insert(dropped.begin(), dropped.end());
  EXPECT_EQ(all.size(), 15u);
}

TEST(DatasetTest, BuildsWithSplits) {
  auto config = ScaleConfig(XianLikeConfig(), 0.2);
  CityDataset dataset(config);
  EXPECT_GT(dataset.network().num_segments(), 50);
  EXPECT_GT(dataset.train().size(), dataset.val().size());
  EXPECT_GT(dataset.train().size(), dataset.test().size());
  EXPECT_GT(dataset.num_slices(), 40);
}

TEST(DatasetTest, PresetsDiffer) {
  auto bj = BeijingLikeConfig();
  auto xa = XianLikeConfig();
  auto cd = ChengduLikeConfig();
  EXPECT_FALSE(bj.has_dynamic_features);
  EXPECT_TRUE(xa.has_dynamic_features);
  EXPECT_NE(bj.city.grid_width, xa.city.grid_width);
  EXPECT_NE(xa.city.seed, cd.city.seed);
}

// --- Ingestion validation (DESIGN.md §4.11) ---------------------------------
//
// Regression: a corrupt trajectory used to sail through ingestion and
// CHECK-abort deep inside the road-network layer. The validators must catch
// it at the boundary with kInvalidArgument instead.

TEST(ValidateTest, AcceptsWellFormedTrajectory) {
  Trajectory trajectory;
  trajectory.points = {{0, 0.0}, {1, 30.0}, {2, 30.0}, {3, 95.5}};
  EXPECT_TRUE(ValidateTrajectory(trajectory, /*num_segments=*/10).ok());
}

TEST(ValidateTest, RejectsEmptyTrajectory) {
  Trajectory trajectory;
  EXPECT_EQ(ValidateTrajectory(trajectory, 10).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsOutOfRangeSegmentIds) {
  Trajectory trajectory;
  trajectory.points = {{0, 0.0}, {10, 1.0}};  // == num_segments: out of range.
  EXPECT_EQ(ValidateTrajectory(trajectory, 10).code(),
            util::StatusCode::kInvalidArgument);
  trajectory.points = {{-1, 0.0}, {1, 1.0}};
  EXPECT_EQ(ValidateTrajectory(trajectory, 10).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsNonMonotoneTimestamps) {
  Trajectory trajectory;
  trajectory.points = {{0, 50.0}, {1, 49.0}};
  EXPECT_EQ(ValidateTrajectory(trajectory, 10).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsNonFiniteTimestamps) {
  Trajectory trajectory;
  trajectory.points = {{0, std::numeric_limits<double>::quiet_NaN()},
                       {1, 1.0}};
  EXPECT_EQ(ValidateTrajectory(trajectory, 10).code(),
            util::StatusCode::kInvalidArgument);
  trajectory.points = {{0, 0.0},
                       {1, std::numeric_limits<double>::infinity()}};
  EXPECT_EQ(ValidateTrajectory(trajectory, 10).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(ValidateTest, CorpusValidationNamesOffendingTrip) {
  Trajectory good;
  good.points = {{0, 0.0}, {1, 1.0}};
  Trajectory bad;
  bad.points = {{0, 0.0}, {99, 1.0}};
  util::Status status = ValidateTrajectories({good, good, bad}, 10);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("trip 2"), std::string::npos);
}

TEST(ValidateTest, GeneratedCorpusIsValid) {
  auto config = ScaleConfig(XianLikeConfig(), 0.05);
  config.city.grid_width = 4;
  config.city.grid_height = 4;
  CityDataset dataset(config);
  EXPECT_TRUE(ValidateTrajectories(dataset.train(),
                                   dataset.network().num_segments())
                  .ok());
}

TEST(ValidateTest, SinglePointTrajectoryIsStructurallyValid) {
  // One in-range point with a finite timestamp is valid *data*; tasks that
  // need a transition (next-hop, TTE, ...) reject it at the serving layer
  // with kInvalidArgument — never an abort (see serve/server.cc).
  Trajectory trajectory;
  trajectory.points = {{3, 42.0}};
  EXPECT_TRUE(ValidateTrajectory(trajectory, /*num_segments=*/10).ok());
}

TEST(ValidateTest, TrafficWindowRejectsNonFiniteFeatures) {
  TrafficStateSeries series(/*num_slices=*/24, /*num_segments=*/5,
                            /*slice_seconds=*/300.0);
  series.Set(/*slice=*/10, /*segment=*/2, /*channel=*/0,
             std::numeric_limits<float>::quiet_NaN());
  series.Set(/*slice=*/15, /*segment=*/3, /*channel=*/1,
             std::numeric_limits<float>::infinity());
  // Windows covering the poisoned cells are rejected with a definite
  // Status naming the cell...
  util::Status nan_status = ValidateTrafficWindow(series, 2, 8, 4);
  EXPECT_EQ(nan_status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(nan_status.message().find("non-finite"), std::string::npos);
  EXPECT_EQ(ValidateTrafficWindow(series, 3, 15, 1).code(),
            util::StatusCode::kInvalidArgument);
  // ...while windows (and segments) that miss them stay valid.
  EXPECT_TRUE(ValidateTrafficWindow(series, 2, 11, 4).ok());
  EXPECT_TRUE(ValidateTrafficWindow(series, 0, 0, 24).ok());
}

TEST(ValidateTest, TrafficWindowBounds) {
  TrafficStateSeries series(/*num_slices=*/24, /*num_segments=*/5,
                            /*slice_seconds=*/300.0);
  EXPECT_TRUE(ValidateTrafficWindow(series, 0, 0, 24).ok());
  EXPECT_TRUE(ValidateTrafficWindow(series, 4, 12, 12).ok());
  EXPECT_EQ(ValidateTrafficWindow(series, 5, 0, 1).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateTrafficWindow(series, -1, 0, 1).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateTrafficWindow(series, 0, 20, 5).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateTrafficWindow(series, 0, -1, 2).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateTrafficWindow(series, 0, 0, 0).code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bigcity::data
