// Self-healing serving tests (DESIGN.md §4.16): worker watchdog
// (hang detection, request reaping, worker replacement), the memory-aware
// overload controller, and the deterministic stall/leak fault kinds that
// drive them. Behavioral assertions use the server's plain-code
// introspection counters so every test also passes in the
// BIGCITY_OBS=OFF build flavor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "serve/admission_queue.h"
#include "serve/overload.h"
#include "serve/server.h"
#include "util/fault_injection.h"

namespace bigcity::serve {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

void ExpectCounterDeltaAtLeast(const char* name, uint64_t before,
                               uint64_t delta) {
#if BIGCITY_OBS
  EXPECT_GE(CounterValue(name), before + delta) << name;
#else
  (void)name;
  (void)before;
  (void)delta;
#endif
}

template <typename Pred>
bool WaitFor(Pred pred, double timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  while (!pred()) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

class WatchdogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = data::ScaleConfig(data::XianLikeConfig(), 0.1);
    config.city.grid_width = 5;
    config.city.grid_height = 5;
    dataset_ = new data::CityDataset(config);
    model_config_.d_model = 32;
    model_config_.num_heads = 2;
    model_config_.num_layers = 1;
    model_config_.spatial_dim = 16;
    model_config_.gat_hidden = 16;
    prototype_ = new core::BigCityModel(dataset_, model_config_);
  }
  static void TearDownTestSuite() {
    delete prototype_;
    delete dataset_;
    prototype_ = nullptr;
    dataset_ = nullptr;
  }
  void TearDown() override {
    util::FaultInjection::DisarmAll();
    util::FaultInjection::FreeLeaks();
  }

  static const data::Trajectory& AnyTrajectory(int min_len = 5) {
    for (const auto& t : dataset_->train()) {
      if (t.length() >= min_len) return t;
    }
    return dataset_->train().front();
  }

  /// Fast supervision: hangs are declared within ~100ms so the reap tests
  /// finish in well under a second.
  static ServeOptions WatchdogOptions() {
    ServeOptions options;
    options.num_workers = 1;
    options.queue_capacity = 8;
    options.retry_backoff_ms = 0.1;
    options.hang_threshold_ms = 100.0;
    options.watchdog_poll_ms = 5.0;
    return options;
  }

  static Request NextHopRequest() {
    Request request;
    request.task = core::Task::kNextHop;
    request.trajectory = AnyTrajectory();
    return request;
  }

  static data::CityDataset* dataset_;
  static core::BigCityConfig model_config_;
  static core::BigCityModel* prototype_;
};

data::CityDataset* WatchdogTest::dataset_ = nullptr;
core::BigCityConfig WatchdogTest::model_config_;
core::BigCityModel* WatchdogTest::prototype_ = nullptr;

// --- Fault-kind units -------------------------------------------------------

TEST(FaultStallTest, UnarmedStallIsFreeAndArmedStallWaitsParamMs) {
  EXPECT_FALSE(util::FaultInjection::MaybeStall("no.such.site"));
  util::FaultInjection::Arm(util::kFaultServeWorkerStall, /*skip=*/0,
                            /*count=*/1, /*param=*/20);
  const Clock::time_point start = Clock::now();
  EXPECT_TRUE(util::FaultInjection::MaybeStall(util::kFaultServeWorkerStall));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  EXPECT_GE(elapsed_ms, 10.0);  // Slept most of the 20ms (scheduler slop).
  // Count exhausted: the next hit passes through untouched.
  EXPECT_FALSE(util::FaultInjection::MaybeStall(util::kFaultServeWorkerStall));
  util::FaultInjection::DisarmAll();
}

TEST(FaultStallTest, DisarmReleasesAWedgedThreadEarly) {
  util::FaultInjection::Arm(util::kFaultServeWorkerStall, /*skip=*/0,
                            /*count=*/1, /*param=*/60000);
  std::atomic<bool> released{false};
  std::thread wedged([&] {
    util::FaultInjection::MaybeStall(util::kFaultServeWorkerStall);
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  util::FaultInjection::Disarm(util::kFaultServeWorkerStall);
  wedged.join();  // Must return promptly, not after 60s.
  EXPECT_TRUE(released.load());
}

TEST(FaultLeakTest, LeakRetainsBytesUntilFreed) {
  util::FaultInjection::FreeLeaks();
  const int64_t block = 1 << 20;
  util::FaultInjection::Arm(util::kFaultServeWorkerLeak, /*skip=*/0,
                            /*count=*/2, /*param=*/block);
  EXPECT_EQ(util::FaultInjection::MaybeLeak(util::kFaultServeWorkerLeak),
            block);
  EXPECT_EQ(util::FaultInjection::MaybeLeak(util::kFaultServeWorkerLeak),
            block);
  // Count exhausted.
  EXPECT_EQ(util::FaultInjection::MaybeLeak(util::kFaultServeWorkerLeak), 0);
  EXPECT_EQ(util::FaultInjection::LeakedBytes(), 2 * block);
  util::FaultInjection::FreeLeaks();
  EXPECT_EQ(util::FaultInjection::LeakedBytes(), 0);
  util::FaultInjection::DisarmAll();
}

// --- Overload controller units ----------------------------------------------

TEST(OverloadControllerTest, HysteresisIsMonotoneOnRecovery) {
  OverloadController::Options options;
  options.mem_budget_bytes = 100;
  options.high_watermark = 0.90;
  options.low_watermark = 0.75;
  OverloadController controller(options);

  EXPECT_EQ(controller.SampleBytes(50), OverloadController::State::kNormal);
  EXPECT_TRUE(controller.AdmitOk());
  EXPECT_EQ(controller.SampleBytes(80), OverloadController::State::kPressure);
  EXPECT_TRUE(controller.AdmitOk());  // Pressure shrinks, never sheds.
  EXPECT_EQ(controller.SampleBytes(95), OverloadController::State::kShedding);
  EXPECT_FALSE(controller.AdmitOk());
  // Hysteresis: hovering between the watermarks keeps shedding.
  EXPECT_EQ(controller.SampleBytes(85), OverloadController::State::kShedding);
  EXPECT_FALSE(controller.AdmitOk());
  // Only dropping below the low watermark recovers — straight to normal.
  EXPECT_EQ(controller.SampleBytes(70), OverloadController::State::kNormal);
  EXPECT_TRUE(controller.AdmitOk());
  EXPECT_EQ(controller.peak_sampled_bytes(), 95);
}

TEST(OverloadControllerTest, DegradedStatesHalveCapacities) {
  OverloadController::Options options;
  options.mem_budget_bytes = 100;
  options.min_batch_max = 1;
  OverloadController controller(options);

  EXPECT_EQ(controller.EffectiveBatchMax(8), 8);
  EXPECT_EQ(controller.EffectiveQueueCapacity(16), 16u);
  controller.SampleBytes(80);  // kPressure.
  EXPECT_EQ(controller.EffectiveBatchMax(8), 4);
  EXPECT_EQ(controller.EffectiveBatchMax(1), 1);  // Floored.
  EXPECT_EQ(controller.EffectiveQueueCapacity(16), 8u);
  EXPECT_EQ(controller.EffectiveQueueCapacity(1), 1u);  // Floored.
  EXPECT_EQ(controller.EffectiveKvCapacity(8), 4u);
  EXPECT_EQ(controller.EffectiveKvCapacity(0), 0u);  // Off stays off.
}

TEST(OverloadControllerTest, ZeroBudgetDisablesMemoryControl) {
  OverloadController controller(OverloadController::Options{});
  EXPECT_EQ(controller.SampleBytes(1 << 30),
            OverloadController::State::kNormal);
  EXPECT_TRUE(controller.AdmitOk());
  EXPECT_EQ(controller.pressure(), 0.0);
}

TEST(OverloadControllerTest, CodelDropsAfterIntervalThenSpacesDrops) {
  OverloadController::Options options;
  options.sojourn_target_ms = 1.0;
  options.sojourn_interval_ms = 10.0;
  OverloadController controller(options);
  const Clock::time_point base = Clock::now();
  const auto ms = [&](double m) {
    return base + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(m));
  };

  // Above target, but the interval has not elapsed: no drop yet.
  EXPECT_FALSE(controller.ShouldDropStale(/*sojourn_us=*/5000.0, ms(0)));
  EXPECT_FALSE(controller.ShouldDropStale(5000.0, ms(5)));
  // One full interval above target: dropping starts.
  EXPECT_TRUE(controller.ShouldDropStale(5000.0, ms(11)));
  // Immediately after a drop the control law spaces the next one.
  EXPECT_FALSE(controller.ShouldDropStale(5000.0, ms(11.5)));
  // interval/sqrt(2) ≈ 7.1ms later the next drop fires.
  EXPECT_TRUE(controller.ShouldDropStale(5000.0, ms(20)));
  // Sojourn back under target resets the law entirely.
  EXPECT_FALSE(controller.ShouldDropStale(100.0, ms(21)));
  EXPECT_FALSE(controller.ShouldDropStale(5000.0, ms(22)));  // Fresh interval.
}

// --- Watchdog end-to-end ----------------------------------------------------

TEST_F(WatchdogTest, ReapsHungWorkerWithDefiniteStatusAndReplacesIt) {
  InferenceServer server(dataset_, model_config_, WatchdogOptions(),
                         prototype_);
  ASSERT_TRUE(server.Start().ok());

  // Healthy baseline forward; also the bit-identity reference output.
  Response before = server.ServeSync(NextHopRequest());
  ASSERT_TRUE(before.status.ok());

  const uint64_t reaped_before = CounterValue("serve.watchdog.reaped");
  const uint64_t hangs_before = CounterValue("serve.watchdog.hangs");

  // Wedge the (only) worker mid-request far past the 100ms threshold. The
  // stall sleeps in 1ms slices re-reading Param, so Disarm below releases
  // the parked thread long before the nominal 60s.
  util::FaultInjection::Arm(util::kFaultServeWorkerStall, /*skip=*/0,
                            /*count=*/1, /*param=*/60000);
  std::future<Response> doomed = server.Submit(NextHopRequest());
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "reap must resolve the caller's future while the worker is wedged";
  Response reaped = doomed.get();
  EXPECT_EQ(reaped.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(reaped.outcome, Outcome::kReaped);
  EXPECT_NE(reaped.trace_id, 0u);

  EXPECT_TRUE(WaitFor([&] { return server.watchdog_replacements() >= 1; },
                      2000.0));
  EXPECT_EQ(server.watchdog_hangs(), 1u);
  EXPECT_GE(server.watchdog_reaps(), 1u);
  ExpectCounterDeltaAtLeast("serve.watchdog.reaped", reaped_before, 1);
  ExpectCounterDeltaAtLeast("serve.watchdog.hangs", hangs_before, 1);

  // Release the wedged thread (it parks until Stop joins it) and verify
  // no permanent capacity loss: the replacement worker serves, and its
  // outputs are bit-identical to the pre-hang replica's.
  util::FaultInjection::Disarm(util::kFaultServeWorkerStall);
  for (int i = 0; i < 8; ++i) {
    Response after = server.ServeSync(NextHopRequest());
    ASSERT_TRUE(after.status.ok()) << after.status.message();
    ASSERT_EQ(after.output.data().size(), before.output.data().size());
    for (size_t j = 0; j < before.output.data().size(); ++j) {
      ASSERT_EQ(after.output.data()[j], before.output.data()[j])
          << "replacement replica output diverged at " << j;
    }
  }
  server.Stop();
}

TEST_F(WatchdogTest, StallBelowThresholdIsNotReaped) {
  ServeOptions options = WatchdogOptions();
  options.hang_threshold_ms = 2000.0;  // Far above the injected stall.
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  util::FaultInjection::Arm(util::kFaultServeWorkerStall, /*skip=*/0,
                            /*count=*/1, /*param=*/30);
  Response response = server.ServeSync(NextHopRequest());
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(server.watchdog_hangs(), 0u);
  EXPECT_EQ(server.watchdog_replacements(), 0u);
  server.Stop();
}

TEST_F(WatchdogTest, BatchedMembersAreAllReapedTogether) {
  ServeOptions options = WatchdogOptions();
  options.batch_window_us = 50000.0;  // Wide window: both requests co-batch.
  options.batch_max = 4;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  util::FaultInjection::Arm(util::kFaultServeWorkerStall, /*skip=*/0,
                            /*count=*/1, /*param=*/60000);
  std::future<Response> first = server.Submit(NextHopRequest());
  std::future<Response> second = server.Submit(NextHopRequest());
  ASSERT_EQ(first.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  ASSERT_EQ(second.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  // Both members of the stalled batch resolve definitively. (They may have
  // dispatched as two singleton batches; then the second was served by the
  // replacement worker and succeeded — either way, no hung future.)
  const Response r1 = first.get();
  const Response r2 = second.get();
  EXPECT_TRUE(r1.status.ok() ||
              r1.status.code() == util::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r2.status.ok() ||
              r2.status.code() == util::StatusCode::kDeadlineExceeded);
  EXPECT_GE(server.watchdog_reaps(), 1u);
  util::FaultInjection::Disarm(util::kFaultServeWorkerStall);
  server.Stop();
}

// --- Memory overload end-to-end ---------------------------------------------

TEST_F(WatchdogTest, LeakDrivesSheddingAndRecoveryIsMonotone) {
  util::FaultInjection::FreeLeaks();
  const int64_t baseline = OverloadController::CurrentMemoryBytes();
  ServeOptions options = WatchdogOptions();
  // Budget sized so the injected leak trips the high watermark and
  // freeing it lands well below the low one, in both obs flavors (the
  // leak tally is plain code; tensor tracking may read 0).
  options.mem_budget_bytes = 4 * baseline + (16 << 20);
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.overload(), nullptr);

  Response warm = server.ServeSync(NextHopRequest());
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(server.overload()->state(), OverloadController::State::kNormal);

  // One worker dequeue leaks a full budget's worth: pressure >= 1.
  util::FaultInjection::Arm(util::kFaultServeWorkerLeak, /*skip=*/0,
                            /*count=*/1, /*param=*/options.mem_budget_bytes);
  (void)server.ServeSync(NextHopRequest());
  ASSERT_TRUE(WaitFor(
      [&] {
        return server.overload()->state() ==
               OverloadController::State::kShedding;
      },
      2000.0))
      << "supervisor must sample the leak into the shedding state";

  // Shedding: new admissions fail fast with the typed overload status.
  Response shed = server.ServeSync(NextHopRequest());
  EXPECT_EQ(shed.status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.outcome, Outcome::kShed);
  EXPECT_GE(server.overload_sheds(), 1u);
  EXPECT_GE(server.overload()->peak_sampled_bytes(),
            options.mem_budget_bytes);

  // Freeing the leak recovers to normal (monotone: no flapping through
  // the watermark band) and admissions reopen.
  util::FaultInjection::FreeLeaks();
  ASSERT_TRUE(WaitFor(
      [&] {
        return server.overload()->state() ==
               OverloadController::State::kNormal;
      },
      2000.0));
  Response recovered = server.ServeSync(NextHopRequest());
  EXPECT_TRUE(recovered.status.ok());
  server.Stop();
}

TEST_F(WatchdogTest, SojournBoundDropsStaleRequestsWithDefiniteStatus) {
  ServeOptions options = WatchdogOptions();
  options.sojourn_target_ms = 1.0;
  // Interval well under one forward so the law arms during the drain.
  options.sojourn_interval_ms = 0.5;
  options.queue_capacity = 16;
  InferenceServer server(dataset_, model_config_, options, prototype_);
  ASSERT_TRUE(server.Start().ok());

  // Hold the only worker so a backlog builds queue residency far above
  // the 1ms target, then release and let CoDel shed the stale tail.
  util::FaultInjection::Arm(util::kFaultServeWorkerHold, /*skip=*/0,
                            /*count=*/1, /*param=*/1);
  std::vector<std::future<Response>> futures;
  futures.push_back(server.Submit(NextHopRequest()));  // Trips the hold.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (int i = 0; i < 12; ++i) {
    futures.push_back(server.Submit(NextHopRequest()));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  util::FaultInjection::Disarm(util::kFaultServeWorkerHold);

  int dropped = 0;
  for (std::future<Response>& future : futures) {
    Response response = future.get();
    // Every request resolves definitively: served or dropped, never hung.
    if (response.status.code() == util::StatusCode::kDeadlineExceeded) {
      ++dropped;
    } else {
      EXPECT_TRUE(response.status.ok() ||
                  response.status.code() ==
                      util::StatusCode::kResourceExhausted)
          << response.status.message();
    }
  }
  EXPECT_EQ(server.stale_drops(), static_cast<uint64_t>(dropped));
  EXPECT_GE(dropped, 1) << "a 60ms backlog against a 1ms target must shed";
  server.Stop();
}

// --- Admission queue effective capacity --------------------------------------

TEST(AdmissionQueueOverloadTest, EffectiveCapacityTightensAndRestores) {
  AdmissionQueue<int> queue(4);
  queue.SetEffectiveCapacity(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // Effective bound.
  EXPECT_EQ(queue.effective_capacity(), 2u);
  // Restoring never exceeds the constructor's hard ceiling.
  queue.SetEffectiveCapacity(100);
  EXPECT_EQ(queue.effective_capacity(), 4u);
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_TRUE(queue.TryPush(4));
  EXPECT_FALSE(queue.TryPush(5));  // Hard ceiling.
}

}  // namespace
}  // namespace bigcity::serve
